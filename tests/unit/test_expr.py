"""Unit + property tests for symbolic expressions and linearization."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lang.expr import (Bin, LinExpr, Num, Ref, Sym, Un, as_expr,
                             linearize, substitute_expr, substitute_lin)
from repro.lang.nodes import eval_int


def test_operator_overloading_builds_trees():
    i = Sym("i")
    e = 2 * i + 1
    assert isinstance(e, Bin) and e.op == "+"
    assert e.free_syms() == {"i"}


def test_linearize_affine():
    i, j = Sym("i"), Sym("j")
    lin = linearize(2 * i + 3 * j - 5, {"i", "j"})
    assert lin.coef("i") == 2
    assert lin.coef("j") == 3
    assert lin.const == -5


def test_linearize_constant_fold():
    lin = linearize(as_expr(7), set())
    assert lin.is_const and lin.const == 7


def test_linearize_opaque_without_loop_vars():
    p, n = Sym("p"), Sym("n")
    lin = linearize(p % n, set())
    assert len(lin.terms) == 1
    atom, coef = lin.terms[0]
    assert coef == 1 and not isinstance(atom, str)


def test_linearize_fails_for_trapped_loop_var():
    i = Sym("i")
    assert linearize(i % 4, {"i"}) is None
    assert linearize(i * i, {"i"}) is None
    assert linearize(Ref("key", (i,)), {"i"}) is None


def test_linearize_mixed_scale():
    i = Sym("i")
    p = Sym("p")
    lin = linearize(3 * (i + p), {"i"})
    assert lin.coef("i") == 3
    assert lin.coef("p") == 3


def test_diff_const():
    i = Sym("i")
    a = linearize(i + 3, {"i"})
    b = linearize(i - 2, {"i"})
    assert a.diff_const(b) == 5
    c = linearize(2 * i, {"i"})
    assert a.diff_const(c) is None


def test_substitute_linexpr():
    lin = LinExpr.of({"k": 2}, 1)
    out = lin.substitute("k", LinExpr.of({"k": 1}, 1))   # k -> k+1
    assert out.coef("k") == 2 and out.const == 3


def test_substitute_expr_inside_opaque():
    k, p, n = Sym("k"), Sym("p"), Sym("n")
    atom = (p - k) % n
    lin = LinExpr.atom(atom)
    out = substitute_lin(lin, "k", LinExpr.of({"k": 1}, 1), k + 1)
    new_atom = out.terms[0][0]
    assert eval_int(new_atom, {"p": 3, "k": 1, "n": 4}) == \
        eval_int(atom, {"p": 3, "k": 2, "n": 4})


def test_substitute_expr_in_ref():
    k = Sym("k")
    e = Ref("a", (k, k + 1))
    out = substitute_expr(e, "k", k + 2)
    assert eval_int(out.subs[0], {"k": 1}) == 3


def test_eval_int_full_operator_set():
    env = {"a": 7, "b": 3}
    a, b = Sym("a"), Sym("b")
    assert eval_int(a + b, env) == 10
    assert eval_int(a - b, env) == 4
    assert eval_int(a * b, env) == 21
    assert eval_int(a // b, env) == 2
    assert eval_int(a % b, env) == 1
    assert eval_int(Bin("min", a, b), env) == 3
    assert eval_int(Bin("max", a, b), env) == 7
    assert eval_int(-a, env) == -7


@given(st.integers(-50, 50), st.integers(-50, 50), st.integers(-10, 10))
@settings(max_examples=100)
def test_linexpr_algebra_matches_eval(x, y, c):
    i, j = Sym("i"), Sym("j")
    expr = 3 * i - 2 * j + c
    lin = linearize(expr, {"i", "j"})
    env = {"i": x, "j": y}
    assert lin.evaluate(env) == eval_int(expr, env)


@given(st.integers(0, 20), st.integers(1, 5))
@settings(max_examples=60)
def test_substitution_commutes_with_evaluation(kval, step):
    k, p = Sym("k"), Sym("p")
    lin = linearize(2 * k + p, {"k", "p"})
    shifted = substitute_lin(lin, "k", LinExpr.of({"k": 1}, step), k + step)
    env = {"k": kval, "p": 3}
    env2 = {"k": kval + step, "p": 3}
    assert shifted.evaluate(env) == lin.evaluate(env2)
