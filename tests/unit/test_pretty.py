"""Tests for the IR pretty printer."""

from repro.apps import get_app
from repro.compiler import OptConfig, transform
from repro.lang import build as B
from repro.lang.pretty import expr_str, program_str, spec_str, stmt_lines


def test_expr_rendering():
    i, j = B.syms("i j")
    assert expr_str(2 * i + 1) == "2 * i + 1"
    assert expr_str((i + 1) * j) == "(i + 1) * j"
    assert expr_str(i - (j - 1)) == "i - (j - 1)"
    assert expr_str(B.emax(i, 1)) == "max(i, 1)"
    assert expr_str(-i) == "-i"
    b = B.array_ref("b")
    assert expr_str(b(i - 1, j)) == "b(i - 1, j)"


def test_spec_rendering():
    spec = B.spec("b", (0, 63), (B.sym("begin"), B.sym("end"), 4))
    assert spec_str(spec) == "b[0:63, begin:end:4]"


def test_stmt_rendering():
    i = B.sym("i")
    x = B.array_ref("x")
    lines = stmt_lines(B.loop(i, 0, 9, [B.assign(x(i), i * 2)]))
    assert lines[0] == "do i = 0, 9"
    assert lines[1].strip() == "x(i) = i * 2"


def test_program_roundtrip_contains_structure():
    app = get_app("jacobi")
    text = program_str(app.program("tiny", 4))
    assert "program jacobi" in text
    assert "shared b(64x64)" in text
    assert "private a(64x64)" in text
    assert "call Barrier(B1)" in text
    assert "do k = 1, 3" in text


def test_transformed_program_shows_runtime_calls():
    app = get_app("jacobi")
    prog = transform(app.program("tiny", 4),
                     OptConfig(push=True, name="full"))
    text = program_str(prog)
    assert "call Validate(" in text
    assert "WRITE_ALL" in text
    assert "call Push(" in text
    assert "! was Barrier(B2)" in text


def test_merge_renders_w_sync():
    app = get_app("gauss")
    prog = transform(app.program("tiny", 4),
                     OptConfig(sync_data_merge=True, name="m"))
    text = program_str(prog)
    assert "call Validate_w_sync(" in text


def test_kernels_and_locks_render():
    app = get_app("is")
    text = program_str(app.program("tiny", 4))
    assert "call Acquire(" in text
    assert "call Release(" in text
    assert "call count_keys(" in text
    assert "indirect" in text
