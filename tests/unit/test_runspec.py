"""Tests for the redesigned RunSpec/run() facade and unified outcomes."""

import numpy as np
import pytest

import repro
from repro.apps import get_app
from repro.errors import ReproError
from repro.harness import (DsmOutcome, DsmResult, MpOutcome, MpResult,
                           RunOutcome, RunSpec, SeqOutcome, SeqResult,
                           XhpfOutcome, XhpfResult, run, run_dsm, run_mp,
                           run_seq, run_xhpf)
from repro.harness.modes import OPT_LEVELS


class TestParityWithLegacyHelpers:
    """run(RunSpec(...)) reproduces each legacy helper exactly."""

    def test_seq_parity(self):
        app = get_app("jacobi")
        legacy = run_seq(app.program("tiny", 1))
        new = run(RunSpec(app="jacobi", mode="seq", dataset="tiny"))
        assert new.time == legacy.time
        for name in legacy.arrays:
            np.testing.assert_array_equal(new.arrays[name],
                                          legacy.arrays[name])

    @pytest.mark.parametrize("opt_name", ["base", "aggr"])
    def test_dsm_parity(self, opt_name):
        app = get_app("jacobi")
        legacy = run_dsm(app.program("tiny", 4), nprocs=4,
                         opt=OPT_LEVELS[opt_name], page_size=1024)
        new = run(RunSpec(app="jacobi", mode="dsm", dataset="tiny",
                          nprocs=4, opt=opt_name, page_size=1024))
        assert new.time == legacy.time
        assert new.stats == legacy.run.stats
        assert new.messages == legacy.run.messages
        for name in legacy.arrays:
            np.testing.assert_array_equal(new.arrays[name],
                                          legacy.arrays[name])

    def test_mp_parity(self):
        app = get_app("jacobi")
        legacy = run_mp(app, dict(app.dataset("tiny").params), nprocs=4)
        new = run(RunSpec(app="jacobi", mode="mp", dataset="tiny",
                          nprocs=4))
        assert new.time == legacy.time
        assert new.messages == legacy.run.messages

    def test_xhpf_parity(self):
        app = get_app("jacobi")
        legacy = run_xhpf(app.program("tiny", 4), nprocs=4)
        new = run(RunSpec(app="jacobi", mode="xhpf", dataset="tiny",
                          nprocs=4))
        assert new.time == legacy.time
        assert new.messages == legacy.messages


class TestRunSpecApi:
    def test_keyword_shorthand(self):
        out = run("jacobi", mode="seq", dataset="tiny")
        assert out.mode == "seq" and out.time > 0

    def test_overrides_on_spec(self):
        spec = RunSpec(app="jacobi", mode="seq")
        out = run(spec, mode="mp", nprocs=2)
        assert out.mode == "mp"
        assert spec.mode == "seq"          # original spec untouched

    def test_program_app(self):
        app = get_app("jacobi")
        prog = app.program("tiny", 2)
        out = run(RunSpec(app=prog, mode="dsm", nprocs=2,
                          page_size=1024))
        assert out.mode == "dsm" and out.stats is not None

    def test_unknown_mode_rejected(self):
        with pytest.raises(ReproError):
            run(RunSpec(app="jacobi", mode="cuda"))

    def test_unknown_opt_level_rejected(self):
        with pytest.raises(ReproError):
            run(RunSpec(app="jacobi", mode="dsm", opt="warp9"))

    def test_mp_needs_app_spec(self):
        prog = get_app("jacobi").program("tiny", 2)
        with pytest.raises(ReproError):
            run(RunSpec(app=prog, mode="mp", nprocs=2))

    def test_explicit_params_override_dataset(self):
        spec = RunSpec(app="jacobi", params={"n": 16, "iters": 2})
        assert spec.resolve_params() == {"n": 16, "iters": 2}

    def test_telemetry_true_makes_fresh_instance(self):
        out = run(RunSpec(app="jacobi", mode="seq", telemetry=True))
        assert out.telemetry is not None
        assert out.telemetry.phase_profile()          # something traced

    def test_telemetry_default_off(self):
        out = run(RunSpec(app="jacobi", mode="seq"))
        assert out.telemetry is None


class TestOutcomeProtocol:
    def test_legacy_aliases_are_the_same_types(self):
        assert SeqResult is SeqOutcome
        assert DsmResult is DsmOutcome
        assert MpResult is MpOutcome
        assert XhpfResult is XhpfOutcome
        from repro.compiler.hpf import XhpfResult as HpfAlias
        assert HpfAlias is XhpfOutcome

    def test_all_modes_share_protocol(self):
        outs = [run("jacobi", mode=m, dataset="tiny", nprocs=2,
                    page_size=1024)
                for m in ("seq", "dsm", "xhpf", "mp")]
        for out in outs:
            assert isinstance(out, RunOutcome)
            assert out.time > 0
            assert isinstance(out.arrays, dict)
            assert out.messages >= 0 and out.data_bytes >= 0
            assert out.telemetry is None
        assert [o.mode for o in outs] == ["seq", "dsm", "xhpf", "mp"]

    def test_seq_has_no_network_traffic(self):
        out = run("jacobi", mode="seq")
        assert out.messages == 0 and out.data_bytes == 0
        assert out.stats is None

    def test_dsm_outcome_delegates_to_run(self):
        out = run("jacobi", mode="dsm", nprocs=2, page_size=1024)
        assert out.time == out.run.time
        assert out.stats is out.run.stats
        assert out.per_proc is out.run.per_proc
        assert out.net is out.run.net

    def test_top_level_exports(self):
        for name in ("RunSpec", "run", "RunOutcome", "run_seq",
                     "run_dsm", "run_mp", "run_xhpf", "Telemetry",
                     "EventBus", "MetricsRegistry", "SpanLog",
                     "chrome_trace", "write_chrome_trace"):
            assert hasattr(repro, name), name

    def test_run_xhpf_signature_dropped_page_size(self):
        # The old signature silently accepted-and-ignored page_size.
        import inspect
        params = inspect.signature(run_xhpf).parameters
        assert "page_size" not in params
        assert "telemetry" in params
