"""Access-analysis tests, centred on the paper's Section 4.3 example."""

import pytest

from repro.apps.jacobi import APP as JACOBI
from repro.apps.gauss import APP as GAUSS
from repro.apps.is_sort import APP as IS
from repro.compiler import analyze_program
from repro.errors import CompileError
from repro.lang import build as B
from repro.lang.nodes import Acquire, ArrayDecl, Barrier, Loop, Program


def find(stmts, pred, out):
    for s in stmts:
        if pred(s):
            out.append(s)
        if isinstance(s, Loop):
            find(s.body, pred, out)
    return out


def barriers_of(prog):
    return find(prog.body, lambda s: isinstance(s, Barrier), [])


class TestJacobiSection43:
    """The worked example of paper Section 4.3 (0-based here)."""

    @pytest.fixture(scope="class")
    def analysis(self):
        prog = JACOBI.program("tiny", 4)
        return prog, analyze_program(prog)

    def region(self, analysis, label):
        prog, res = analysis
        b = next(x for x in barriers_of(prog) if x.label == label)
        return b, res.region_of(b)

    def test_region_b2_reads_widened_boundary(self, analysis):
        _, region = self.region(analysis, "B2")
        (summ,) = region.summary_list()
        assert summ.array == "b"
        assert summ.tags == {"read"}
        (r,) = summ.read_parts
        # Columns span [jlo-1, jhi+1]: the paper's [begin-1, end+1].
        lo, hi, step = r.dims[1]
        assert lo.const == -1 and hi.const == 1 and step == 1
        # Rows cover the whole column (copy phase widened the hull).
        rlo, rhi, _ = r.dims[0]
        assert rlo.is_const and rlo.const == 0
        assert rhi.is_const and rhi.const == 63

    def test_region_b1_write_first(self, analysis):
        _, region = self.region(analysis, "B1")
        (summ,) = region.summary_list()
        assert summ.tags == {"write", "write-first"}
        (w,) = summ.write_parts
        assert w.exact

    def test_prec_relation(self, analysis):
        prog, res = analysis
        bars = {b.label: b for b in barriers_of(prog)}
        prec_b2 = res.prec[id(bars["B2"])]
        assert prec_b2 == [bars["B1"]]
        prec_b1 = {getattr(p, "label", None)
                   for p in res.prec[id(bars["B1"])]}
        assert prec_b1 == {"B0", "B2"}

    def test_region_b2_wraps_loop(self, analysis):
        _, region = self.region(analysis, "B2")
        labels = {f.label for f in region.succ_fetches}
        assert labels == {"B1"}
        assert region.reaches_end   # loop exit falls off the program

    def test_private_array_not_summarized(self, analysis):
        _, region = self.region(analysis, "B1")
        arrays = {s.array for s in region.summary_list()}
        assert "a" not in arrays    # a is private scratch


class TestKillTracking:
    def test_loop_carried_region_substitutes_loop_var(self):
        """Accesses reached through a back edge see k+1, not k."""
        prog = GAUSS.program("tiny", 4)
        res = analyze_program(prog)
        bars = barriers_of(prog)
        b2 = next(b for b in bars if b.label == "B2")
        region = res.region_of(b2)
        summs = {s.array: s for s in region.summary_list()
                 if s.owner is not None}
        piv = summs["pivrow"]
        (w,) = piv.write_parts
        lo, hi, _ = w.dims[0]
        # The pivot kernel of the *next* iteration writes pivrow[k+1].
        assert lo.coef("k") == 1 and lo.const == 1

    def test_shared_read_local_kills_dependents(self):
        """Sections depending on a Local read from shared memory degrade
        to unknown when the Local is inside the region."""
        i = B.sym("i")
        x = B.array_ref("x")
        idx = B.array_ref("idx")
        body = [
            B.barrier("B0"),
            B.local("r", idx(0)),
            B.loop(i, 0, 7, [B.assign(x(B.sym("r") + i), 1.0)]),
            B.barrier("B1"),
        ]
        prog = Program("t", [ArrayDecl("x", (64,)),
                             ArrayDecl("idx", (8,))], body)
        res = analyze_program(prog)
        b0 = barriers_of(prog)[0]
        region = res.region_of(b0)
        xs = region.summaries[("x", "")]
        assert xs.unknown


class TestIsAnalysis:
    def test_lock_region_gets_read_write_full_section(self):
        prog = IS.program("tiny", 4)
        res = analyze_program(prog)
        acquires = find(prog.body, lambda s: isinstance(s, Acquire), [])
        region = res.region_of(acquires[0])
        summ = region.summaries[("shared_buckets", "")]
        assert summ.tags == {"read", "write"}
        (w,) = summ.write_parts
        assert w.exact
        (r,) = summ.read_parts
        assert w.contains(r)

    def test_indirect_detected(self):
        prog = IS.program("tiny", 4)
        res = analyze_program(prog)
        assert res.has_indirect
        assert res.has_locks


def test_sync_inside_conditional_rejected():
    body = [
        B.when(B.sym("p").eq(0), [B.barrier("inner")]),
    ]
    prog = Program("bad", [ArrayDecl("x", (8,))], body)
    with pytest.raises(CompileError):
        analyze_program(prog)


def test_entry_region_covers_initialization():
    prog = JACOBI.program("tiny", 4)
    res = analyze_program(prog)
    summ = res.entry_region.summaries.get(("b", ""))
    assert summ is not None and summ.write
