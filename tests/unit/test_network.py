"""Unit tests for the simulated interconnect and its calibration."""

import pytest

from repro.machine import MachineConfig
from repro.net import Network
from repro.sim import Engine


def build(nprocs, mains, config=None):
    """Wire up an engine + network with one endpoint per main function."""
    engine = Engine()
    config = config or MachineConfig(nprocs=nprocs)
    net = Network(engine, config, nprocs)
    endpoints = {}
    for i, main in enumerate(mains):
        proc = engine.add_process(f"p{i}", lambda p, m=main: m(p, endpoints))
        endpoints[i] = net.attach(proc)
    return engine, net, endpoints


def test_send_recv_basic():
    got = {}

    def sender(proc, eps):
        eps[0].send(1, "data", payload=123, size=100)

    def receiver(proc, eps):
        msg = eps[1].recv(kind="data")
        got["payload"] = msg.payload
        got["time"] = proc.engine.now

    engine, net, _ = build(2, [sender, receiver])
    engine.run()
    assert got["payload"] == 123
    cfg = MachineConfig()
    expected = (cfg.send_overhead + cfg.wire_time(100) + cfg.recv_overhead)
    assert got["time"] == pytest.approx(expected)


def test_message_stats_recorded():
    def sender(proc, eps):
        eps[0].send(1, "data", size=100)
        eps[0].send(1, "data", size=50)

    def receiver(proc, eps):
        eps[1].recv(kind="data")
        eps[1].recv(kind="data")

    engine, net, _ = build(2, [sender, receiver])
    engine.run()
    assert net.stats.messages == 2
    cfg = MachineConfig()
    assert net.stats.bytes == 150 + 2 * cfg.header_bytes
    assert net.stats.by_kind["data"] == 2


def test_recv_matches_by_src_and_tag():
    order = []

    def sender_a(proc, eps):
        eps[0].send(2, "data", payload="from0", tag="x")

    def sender_b(proc, eps):
        eps[1].send(2, "data", payload="from1", tag="y")

    def receiver(proc, eps):
        # Ask for tag y first, even though tag x arrives first.
        msg = eps[2].recv(kind="data", tag="y")
        order.append(msg.payload)
        msg = eps[2].recv(kind="data", tag="x")
        order.append(msg.payload)

    engine, _, _ = build(3, [sender_a, sender_b, receiver])
    engine.run()
    assert order == ["from1", "from0"]


def test_handler_path_roundtrip_calibration():
    """Minimum request/response roundtrip must be the paper's 365 us."""
    result = {}

    def responder_stoppable(proc, eps):
        cfg = eps[1].net.config

        def handle(msg):
            eps[1].charge(cfg.request_service)
            eps[1].send(msg.src, "reply", size=0)

        eps[1].on("request", handle)
        eps[1].recv(kind="stop")

    def requester_with_stop(proc, eps):
        t0 = proc.engine.now
        eps[0].send(1, "request", size=0)
        eps[0].recv(kind="reply")
        result["rtt"] = proc.engine.now - t0
        eps[0].send(1, "stop")

    engine, _, _ = build(2, [requester_with_stop, responder_stoppable])
    engine.run()
    assert result["rtt"] == pytest.approx(365.0, rel=0.01)


def test_interrupt_steals_time_from_computation():
    """A request interrupting a computing processor delays its work."""
    result = {}

    def requester(proc, eps):
        proc.advance(10.0)
        eps[0].send(1, "request", size=0)
        eps[0].recv(kind="reply")

    def worker(proc, eps):
        cfg = eps[1].net.config

        def handle(msg):
            eps[1].charge(cfg.request_service)
            eps[1].send(msg.src, "reply", size=0)

        eps[1].on("request", handle)
        proc.advance(1000.0)
        result["done"] = proc.engine.now

    engine, _, _ = build(2, [requester, worker])
    engine.run()
    cfg = MachineConfig()
    stolen = (cfg.interrupt_cost + cfg.request_service + cfg.send_overhead)
    assert result["done"] == pytest.approx(1000.0 + stolen)


def test_handler_without_interrupt_flag_charges_no_interrupt():
    result = {}

    def requester(proc, eps):
        eps[0].send(1, "request", size=0)
        eps[0].recv(kind="reply")

    def worker(proc, eps):
        def handle(msg):
            eps[1].charge(10.0)
            eps[1].send(msg.src, "reply", size=0)

        eps[1].on("request", handle, interrupt=False)
        proc.advance(1000.0)
        result["done"] = proc.engine.now

    engine, _, _ = build(2, [requester, worker])
    engine.run()
    cfg = MachineConfig()
    assert result["done"] == pytest.approx(1000.0 + 10.0 + cfg.send_overhead)


def test_broadcast_sends_n_minus_1_messages():
    def root(proc, eps):
        eps[0].broadcast("data", size=10)

    def leaf(proc, eps):
        pid = proc.pid
        eps[pid].recv(kind="data")

    engine, net, _ = build(4, [root, leaf, leaf, leaf])
    engine.run()
    assert net.stats.messages == 3


def test_wire_time_scales_with_size():
    times = {}

    def sender(proc, eps):
        eps[0].send(1, "small", size=0)
        eps[0].send(1, "big", size=35000)

    def receiver(proc, eps):
        eps[1].recv(kind="small")
        t0 = proc.engine.now
        eps[1].recv(kind="big")
        times["big_extra"] = proc.engine.now - t0

    engine, _, _ = build(2, [sender, receiver])
    engine.run()
    # 35000 bytes at 35 bytes/us adds ~1000 us of wire time.
    assert times["big_extra"] > 900.0
