"""Unit tests for the wall-clock observatory (``repro.observe``)."""

import io
import json

import pytest

from repro.errors import ReproError
from repro.harness import RunSpec, run
from repro.harness.schema import (GENERATED_BY, check_schema, envelope,
                                  parse_schema, schema_id)
from repro.observe import RunMonitor, WallProfiler
from repro.observe.history import (DEFAULT_TOLERANCE, append_history,
                                   compare, load_baseline, load_history,
                                   write_baseline)
from repro.observe.perf import render_perf
from repro.observe.profiler import _classify


# ----------------------------------------------------------------------
# Dispatch-action classification.
# ----------------------------------------------------------------------

class TestClassify:
    def test_exact_process_names(self):
        assert _classify("Process._switch_in") == "compute"
        assert _classify("Process._advance_wake") == "compute"
        assert _classify("Process._wait_wake") == "compute"
        assert _classify("Process.wake") == "engine"

    def test_subsystem_fragments(self):
        assert _classify("ReliableTransport._on_timer") == "net"
        assert _classify("Network._deliver") == "net"
        assert _classify("Injector._fire") == "faults"
        assert _classify("RecoveryManager._probe") == "recovery"

    def test_lambda_inside_subsystem_classifies_to_it(self):
        assert _classify("Transport.send.<locals>.<lambda>") == "net"

    def test_unknown_goes_to_engine(self):
        assert _classify("Barrier._release") == "engine"


class TestWallProfiler:
    def test_account_uses_qualname_and_caches(self):
        prof = WallProfiler()

        def fn():
            pass
        fn.__qualname__ = "Network._deliver"
        prof.account(fn, 0.25)
        prof.account(fn, 0.25)
        assert prof.wall == {"net": 0.5}
        assert prof._cache == {"Network._deliver": "net"}

    def test_leaf_time_counts_toward_leaf_total(self):
        prof = WallProfiler()
        prof.leaf("tm.diff", 0.2)
        prof.leaf("tm.serve", 0.1)
        assert prof.leaf_s == pytest.approx(0.3)
        assert prof.wall["tm.diff"] == pytest.approx(0.2)

    def test_access_leaf_discards_faulted_sample(self):
        prof = WallProfiler()
        prof.access_leaf(0.1)     # fault-free: timed
        prof.access_leaf(None)    # faulted: counted, not timed
        assert prof.n_accesses == 2
        assert prof.n_access_timed == 1
        assert prof.wall["tm.access"] == pytest.approx(0.1)

    def test_attribution_puts_loop_slack_under_engine(self):
        prof = WallProfiler()
        prof.run_s = 1.0
        prof.wall = {"compute": 0.6, "net": 0.1}
        att = prof.attribution()
        assert att["engine"] == pytest.approx(0.3)
        assert sum(att.values()) == pytest.approx(prof.run_s)

    def test_rates_are_zero_before_any_run(self):
        prof = WallProfiler()
        assert prof.events_per_sec() == 0.0
        assert prof.accesses_per_sec() == 0.0

    def test_as_dict_percentages_sum_to_100(self):
        prof = WallProfiler()
        prof.run_s = 2.0
        prof.n_events = 100
        prof.wall = {"compute": 1.0, "net": 0.5}
        d = prof.as_dict()
        assert d["events_per_sec"] == pytest.approx(50.0)
        assert sum(d["attribution_pct"].values()) == pytest.approx(
            100.0, abs=0.1)

    def test_render_mentions_throughput(self):
        prof = WallProfiler()
        prof.run_s = 1.0
        prof.n_events = 10
        assert "events" in prof.render()


# ----------------------------------------------------------------------
# Run monitor.
# ----------------------------------------------------------------------

class TestRunMonitor:
    class FakeEngine:
        now = 500.0

    def test_callback_receives_beats(self):
        beats = []
        mon = RunMonitor(interval_s=0.0, callback=beats.append)
        mon.tick(self.FakeEngine(), 1000)
        assert len(beats) == 1
        b = beats[0]
        assert b["sim_us"] == 500.0
        assert b["events"] == 1000
        assert b["events_per_sec"] > 0

    def test_expectation_adds_eta_and_pct(self):
        beats = []
        mon = RunMonitor(interval_s=0.0, expected_us=1000.0,
                         callback=beats.append)
        mon.tick(self.FakeEngine(), 10)
        assert beats[0]["pct"] == pytest.approx(50.0)
        assert beats[0]["eta_s"] is not None

    def test_first_maybe_tick_only_arms_the_clock(self):
        beats = []
        mon = RunMonitor(interval_s=0.0, callback=beats.append)
        mon.maybe_tick(self.FakeEngine(), 1)
        assert beats == []          # arms t0
        mon.maybe_tick(self.FakeEngine(), 2)
        assert len(beats) == 1      # interval 0 -> beats from then on

    def test_stream_line_is_carriage_returned(self):
        out = io.StringIO()
        mon = RunMonitor(interval_s=0.0, stream=out)
        mon.tick(self.FakeEngine(), 42)
        mon.finish(self.FakeEngine(), 42)
        text = out.getvalue()
        assert text.startswith("\r[observe]")
        assert text.endswith("\n")

    def test_mask_matches_mask_bits(self):
        assert RunMonitor(mask_bits=10).mask == 1023


# ----------------------------------------------------------------------
# Versioned JSON schema envelope (satellite: unified --json schema).
# ----------------------------------------------------------------------

class TestSchemaEnvelope:
    def test_envelope_shape(self):
        p = envelope("perf", dataset="tiny", apps={})
        assert p["schema"] == "repro-perf/1"
        assert p["generated_by"] == GENERATED_BY
        assert p["dataset"] == "tiny"

    def test_schema_id_versions(self):
        assert schema_id("bench") == "repro-bench/1"
        assert schema_id("chaos", 3) == "repro-chaos/3"

    def test_parse_roundtrip(self):
        kind, version = parse_schema(envelope("sanitize"))
        assert (kind, version) == ("sanitize", 1)

    def test_check_rejects_wrong_kind(self):
        with pytest.raises(ReproError):
            check_schema(envelope("bench"), "perf")

    def test_check_rejects_missing_schema(self):
        with pytest.raises(ReproError):
            check_schema({"apps": {}}, "perf")


# ----------------------------------------------------------------------
# Perf history store and the regression gate.
# ----------------------------------------------------------------------

def perf_payload(**app_fields):
    entry = {"sim_time_us": 1000.0, "events": 500, "accesses": 200,
             "messages": 64, "stmts": 300, "wall_s": 0.05,
             "events_per_sec": 10000.0, "accesses_per_sec": 4000.0}
    entry.update(app_fields)
    return envelope("perf", dataset="tiny", nprocs=4, page_size=1024,
                    repeats=3, apps={"jacobi": entry})


class TestPerfGate:
    def test_identical_payloads_pass(self):
        base = perf_payload()
        res = compare(perf_payload(), base)
        assert res.ok
        assert res.checked == 1
        assert "OK" in res.render()

    def test_deterministic_drift_fails_exactly(self):
        res = compare(perf_payload(events=501), perf_payload())
        assert not res.ok
        assert any("events" in r and "exact" in r
                   for r in res.regressions)

    def test_rate_within_band_passes(self):
        # 50% drop is inside the default 60% band.
        res = compare(perf_payload(events_per_sec=5000.0),
                      perf_payload())
        assert res.ok

    def test_rate_below_band_fails(self):
        res = compare(perf_payload(events_per_sec=3999.0),
                      perf_payload())
        assert not res.ok
        assert "events_per_sec" in res.regressions[0]
        assert "REGRESSED" in res.render()

    def test_improvement_is_informational(self):
        res = compare(perf_payload(events_per_sec=50000.0),
                      perf_payload())
        assert res.ok
        assert res.improvements

    def test_config_mismatch_not_comparable(self):
        cur = perf_payload()
        cur["nprocs"] = 8
        res = compare(cur, perf_payload())
        assert not res.ok
        assert "not comparable" in res.regressions[0]
        assert res.checked == 0

    def test_missing_app_fails(self):
        cur = perf_payload()
        cur["apps"] = {}
        res = compare(cur, perf_payload())
        assert not res.ok

    def test_tolerance_must_be_a_fraction(self):
        for bad in (0.0, 1.0, -0.5, 2.0):
            with pytest.raises(ReproError):
                compare(perf_payload(), perf_payload(), tolerance=bad)
        assert 0.0 < DEFAULT_TOLERANCE < 1.0

    def test_baseline_write_load_roundtrip(self, tmp_path):
        path = tmp_path / "BENCH.json"
        write_baseline(perf_payload(), str(path))
        assert load_baseline(str(path)) == perf_payload()
        # Committed baselines must be byte-stable.
        first = path.read_bytes()
        write_baseline(perf_payload(), str(path))
        assert path.read_bytes() == first

    def test_baseline_rejects_foreign_payload(self, tmp_path):
        path = tmp_path / "BENCH.json"
        path.write_text(json.dumps(envelope("bench", apps={})))
        with pytest.raises(ReproError):
            load_baseline(str(path))

    def test_history_append_and_load(self, tmp_path):
        path = str(tmp_path / "history.jsonl")
        append_history(perf_payload(), path)
        append_history(perf_payload(events=9), path)
        hist = load_history(path)
        assert len(hist) == 2
        assert hist[1]["apps"]["jacobi"]["events"] == 9


class TestRenderPerf:
    def test_table_includes_apps_and_rates(self):
        payload = perf_payload(attribution_pct={"compute": 80.0,
                                                "engine": 20.0},
                               telemetry_overhead_pct=3.0)
        text = render_perf(payload)
        assert "jacobi" in text
        assert "10,000" in text
        assert "compute" in text


# ----------------------------------------------------------------------
# EventBus fast path (satellite: early-out before packing).
# ----------------------------------------------------------------------

class NoIter:
    """Pages stand-in that explodes if anything tries to pack it."""

    def __iter__(self):
        raise AssertionError("pages were packed on a disabled path")


class TestTelemetryFastPath:
    def test_disabled_bus_allocates_no_event(self, monkeypatch):
        import repro.telemetry.events as events_mod
        from repro.telemetry.events import EventBus

        def boom(*a, **kw):
            raise AssertionError("Event allocated on a disabled bus")
        bus = EventBus(enabled=False)
        monkeypatch.setattr(events_mod, "Event", boom)
        bus.emit(1.0, 0, "tm.read_fault", 0, {"page": 1})
        assert len(bus) == 0

    def test_access_skips_packing_when_access_events_off(self):
        from repro.telemetry import Telemetry
        tel = Telemetry(events=True, access_events=False)
        tel.access(0, "rt.read", "a", ((0, 3, 1),), NoIter())
        assert len(tel.bus) == 0

    def test_access_skips_packing_when_bus_disabled(self):
        from repro.telemetry import Telemetry
        tel = Telemetry(events=False, access_events=True)
        tel.access(0, "rt.read", "a", ((0, 3, 1),), NoIter())
        assert len(tel.bus) == 0

    def test_access_packs_pages_when_enabled(self):
        from repro.telemetry import Telemetry
        tel = Telemetry(events=True, access_events=True)
        tel.access(0, "rt.read", "a", ((0, 3, 1),), [1, 2])
        assert tel.bus.events[0].args["pages"] == (1, 2)


# ----------------------------------------------------------------------
# The observatory on a real (tiny) run.
# ----------------------------------------------------------------------

class TestProfiledRun:
    def test_profiled_jacobi_reports_throughput(self):
        out = run(RunSpec(app="jacobi", mode="dsm", dataset="tiny",
                          nprocs=4, page_size=1024, profile=True))
        prof = out.profile
        assert prof is not None
        assert prof.n_events > 0
        assert prof.n_accesses > 0
        assert prof.n_stmts > 0
        assert prof.n_messages > 0
        assert prof.run_s > 0
        att = prof.attribution()
        assert "compute" in att
        assert sum(att.values()) == pytest.approx(prof.run_s, rel=1e-6)

    def test_explicit_profiler_instance_is_returned(self):
        prof = WallProfiler()
        out = run(RunSpec(app="jacobi", mode="dsm", dataset="tiny",
                          nprocs=4, page_size=1024, profile=prof))
        assert out.profile is prof

    def test_unprofiled_run_has_no_profile(self):
        out = run(RunSpec(app="jacobi", mode="dsm", dataset="tiny",
                          nprocs=4, page_size=1024))
        assert out.profile is None

    def test_seq_mode_rejects_profile(self):
        with pytest.raises(ReproError, match="seq"):
            run(RunSpec(app="jacobi", mode="seq", dataset="tiny",
                        profile=True))

    def test_seq_mode_rejects_monitor(self):
        with pytest.raises(ReproError, match="seq"):
            run(RunSpec(app="jacobi", mode="seq", dataset="tiny",
                        monitor=RunMonitor(callback=lambda b: None)))

    def test_monitored_run_beats(self):
        beats = []
        mon = RunMonitor(interval_s=0.0, callback=beats.append,
                         mask_bits=2)
        out = run(RunSpec(app="jacobi", mode="dsm", dataset="tiny",
                          nprocs=4, page_size=1024, monitor=mon))
        assert out.time > 0
        assert beats, "monitor never ticked"
        assert beats[-1]["sim_us"] == pytest.approx(float(out.time))
