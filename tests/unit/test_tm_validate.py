"""Tests of the augmented run-time interface: Validate and variants."""

import pytest

from repro.memory import Section, SharedLayout
from repro.rt import AccessType
from repro.tm.system import TmSystem


def run(nprocs, main, page_size=256, arrays=(("x", (64,)),)):
    layout = SharedLayout(page_size=page_size)
    for name, shape in arrays:
        layout.add_array(name, shape)
    system = TmSystem(nprocs=nprocs, layout=layout)
    return system.run(main), system


def test_validate_read_aggregates_fetches():
    """One Validate for a 4-page section: 2 messages, not 8."""
    def main(node):
        x = node.array("x")
        if node.pid == 0:
            x[0:64] = 1.0   # two pages of 256B
        node.barrier()
        if node.pid == 1:
            node.validate([Section.of("x", (0, 63))], AccessType.READ)
            return float(x[0:64].sum())
        node.barrier()
        if node.pid == 0:
            node.barrier()   # placeholder; not reached by P1
        return None

    # Use a simpler 2-proc structure to count messages deterministically.
    def main2(node):
        x = node.array("x")
        if node.pid == 0:
            x[0:64] = 1.0
        node.barrier()
        before = node.sys.net.stats.messages
        if node.pid == 1:
            node.validate([Section.of("x", (0, 63))], AccessType.READ)
            total = float(x[0:64].sum())
        else:
            total = None
        node.barrier()
        after = node.sys.net.stats.messages
        return (total, after - before)

    res, _ = run(2, main2)
    total, _ = res.returns[1]
    assert total == 64.0
    p1 = res.per_proc[1]
    # The Validate leaves no page faults for the subsequent reads.
    assert p1.read_faults == 0
    # One aggregated request/response pair.
    assert res.net.by_kind["diff_req"] == 1
    assert res.net.by_kind["diff_resp"] == 1


def test_validate_read_write_prepares_twins():
    def main(node):
        x = node.array("x")
        if node.pid == 0:
            x[0:32] = 1.0
        node.barrier()
        if node.pid == 1:
            node.validate([Section.of("x", (0, 31))], AccessType.READ_WRITE)
            x[0:32] = x[0:32] + 1.0
        node.barrier()
        return float(x[0:32].sum())

    res, _ = run(2, main)
    assert res.returns == [64.0, 64.0]
    p1 = res.per_proc[1]
    assert p1.segv == 0          # validate bypassed all faults
    assert p1.twins_created == 1  # but consistency is preserved


def test_validate_write_all_disables_twins_and_diffs():
    def main(node):
        x = node.array("x")
        if node.pid == 0:
            node.validate([Section.of("x", (0, 31))], AccessType.WRITE_ALL)
            x[0:32] = 5.0
        node.barrier()
        return float(x[0:32].sum())

    res, _ = run(2, main)
    assert res.returns == [160.0, 160.0]
    p0 = res.per_proc[0]
    assert p0.twins_created == 0
    assert p0.diffs_created == 0
    assert p0.segv == 0
    # The remote reader received a full page instead of a diff.
    assert p0.full_pages_served == 1


def test_write_all_full_page_costs_more_data_than_diff():
    """The Jacobi effect: WRITE_ALL ships whole pages of mostly-zero data."""
    def run_one(opt):
        def main(node):
            x = node.array("x")
            if node.pid == 0:
                if opt:
                    node.validate([Section.of("x", (0, 31))],
                                  AccessType.WRITE_ALL)
                x[3] = 1.0   # tiny change on a big page
            node.barrier()
            return float(x[3])

        res, _ = run(2, main)
        assert res.returns == [1.0, 1.0]
        return res.data_bytes

    assert run_one(opt=True) > run_one(opt=False)


def test_read_write_all_collapses_diff_accumulation():
    """The IS effect: migratory overwrites fetch one page, not k diffs."""
    def main(node):
        x = node.array("x")
        sec = Section.of("x", (0, 31))
        for turn in range(node.nprocs):
            node.lock_acquire(1)
            if True:
                node.validate([sec], AccessType.READ_WRITE_ALL)
                x[0:32] = x[0:32] + 1.0
            node.lock_release(1)
        node.barrier()
        return float(x[0])

    res, _ = run(4, main)
    assert res.returns == [16.0] * 4
    assert res.stats.diffs_created == 0


def test_validate_w_sync_piggybacks_on_lock():
    def main(node):
        x = node.array("x")
        if node.pid == 0:
            node.lock_acquire(0)
            x[0:32] = 2.0
            node.lock_release(0)
        node.barrier()
        if node.pid == 1:
            node.validate_w_sync([Section.of("x", (0, 31))],
                                 AccessType.READ)
            node.lock_acquire(0)
            total = float(x[0:32].sum())
            node.lock_release(0)
            node.barrier()
            return total
        node.barrier()
        return None

    res, _ = run(2, main)
    assert res.returns[1] == 64.0
    p1 = res.per_proc[1]
    # Diffs arrived with the lock grant: no faults, no diff requests.
    assert p1.read_faults == 0
    assert res.net.by_kind.get("diff_req", 0) == 0


def test_validate_w_sync_at_barrier_donates_diffs():
    def main(node):
        x = node.array("x")
        if node.pid == 0:
            x[0:32] = 3.0
        if node.pid != 0:
            node.validate_w_sync([Section.of("x", (0, 31))],
                                 AccessType.READ)
        node.barrier()
        total = float(x[0:32].sum())
        node.barrier()
        return total

    res, _ = run(4, main)
    assert res.returns == [96.0] * 4
    # Donations happen; identical content to 3 requesters → broadcast group.
    assert res.net.by_kind.get("diff_donate", 0) == 3
    assert res.net.by_kind.get("diff_req", 0) == 0


def test_async_validate_completes_at_first_fault():
    def main(node):
        x = node.array("x")
        if node.pid == 0:
            x[0:64] = 4.0
        node.barrier()
        if node.pid == 1:
            node.validate([Section.of("x", (0, 63))], AccessType.READ,
                          asynchronous=True)
            node.proc.advance(500.0)   # overlapped computation
            total = float(x[0:64].sum())   # first touch completes the plan
            node.barrier()
            return total
        node.barrier()
        return None

    res, _ = run(2, main)
    assert res.returns[1] == 256.0
    p1 = res.per_proc[1]
    assert p1.read_faults == 1      # exactly one completing fault


def test_async_validate_overlaps_communication():
    """With enough independent compute, async beats sync wall-clock."""
    def make(asynchronous):
        def main(node):
            x = node.array("x")
            if node.pid == 0:
                x[0:64] = 1.0
            node.barrier()
            if node.pid == 1:
                node.validate([Section.of("x", (0, 63))], AccessType.READ,
                              asynchronous=asynchronous)
                node.proc.advance(2000.0)
                float(x[0:64].sum())
            node.barrier()
        return main

    res_sync, _ = run(2, make(False))
    res_async, _ = run(2, make(True))
    assert res_async.time < res_sync.time


def test_validate_counts():
    def main(node):
        x = node.array("x")
        node.validate([Section.of("x", (0, 31))], AccessType.WRITE_ALL)
        x[0:32] = 1.0
        node.barrier()

    res, _ = run(2, main)
    assert res.stats.validates == 2


def test_write_all_partial_pages_keep_twins():
    """Pages only partly covered by a WRITE_ALL section stay protected."""
    def main(node):
        x = node.array("x")
        # 256B pages = 32 doubles; section covers 1.5 pages: elements 0..47.
        if node.pid == 0:
            node.validate([Section.of("x", (0, 47))], AccessType.WRITE_ALL)
            x[0:48] = 2.0
        if node.pid == 1:
            x[48:64] = 3.0   # false sharing on page 1 with P0
        node.barrier()
        return float(x[0:64].sum())

    res, _ = run(2, main)
    expected = 48 * 2.0 + 16 * 3.0
    assert res.returns == [expected] * 2
    p0 = res.per_proc[0]
    assert p0.twins_created == 1   # the partial page twins normally
