"""Unit tests for the IR interpreter (sequential runtime)."""

import numpy as np
import pytest

from repro.errors import InterpError
from repro.harness.runner import run_seq
from repro.interp import Interpreter, SeqRuntime
from repro.lang import build as B
from repro.lang.nodes import ArrayDecl, Program


def run(body, arrays, params=None):
    prog = Program("t", arrays, body, params or {})
    rt = SeqRuntime(prog)
    Interpreter(prog, rt).run()
    return rt


def arr(rt, name):
    return rt.accessor(name).whole()


def test_vectorized_affine_assign():
    i = B.sym("i")
    x = B.array_ref("x")
    rt = run([B.loop(i, 0, 9, [B.assign(x(i), 2 * i + 1)])],
             [ArrayDecl("x", (10,))])
    np.testing.assert_allclose(arr(rt, "x"), 2 * np.arange(10) + 1)


def test_vectorized_shifted_read():
    i = B.sym("i")
    x, y = B.array_ref("x"), B.array_ref("y")
    rt = run([
        B.loop(i, 0, 9, [B.assign(x(i), i * 1.0)]),
        B.loop(i, 1, 8, [B.assign(y(i), x(i - 1) + x(i + 1))]),
    ], [ArrayDecl("x", (10,)), ArrayDecl("y", (10,))])
    expected = np.zeros(10)
    expected[1:9] = np.arange(0, 8) + np.arange(2, 10)
    np.testing.assert_allclose(arr(rt, "y"), expected)


def test_strided_loop():
    i = B.sym("i")
    x = B.array_ref("x")
    rt = run([B.loop(i, 0, 9, [B.assign(x(i), 5.0)], step=3)],
             [ArrayDecl("x", (10,))])
    expected = np.zeros(10)
    expected[0::3] = 5.0
    np.testing.assert_allclose(arr(rt, "x"), expected)


def test_two_dim_loop_nest():
    i, j = B.syms("i j")
    a = B.array_ref("a")
    rt = run([B.loop(j, 0, 3, [B.loop(i, 0, 4, [
        B.assign(a(i, j), i + 10 * j)])])],
        [ArrayDecl("a", (5, 4))])
    ii = np.arange(5)[:, None]
    jj = np.arange(4)[None, :]
    np.testing.assert_allclose(arr(rt, "a"), ii + 10 * jj)


def test_scalar_assign_and_locals():
    x = B.array_ref("x")
    rt = run([
        B.local("v", 3 + 4),
        B.assign(x(2), B.sym("v") * 2),
    ], [ArrayDecl("x", (4,))])
    assert arr(rt, "x")[2] == 14.0


def test_if_statement():
    x = B.array_ref("x")
    rt = run([
        B.local("flag", 1),
        B.when(B.sym("flag").eq(1), [B.assign(x(0), 1.0)],
               [B.assign(x(0), 2.0)]),
        B.when(B.sym("flag").eq(0), [B.assign(x(1), 1.0)],
               [B.assign(x(1), 2.0)]),
    ], [ArrayDecl("x", (4,))])
    np.testing.assert_allclose(arr(rt, "x")[:2], [1.0, 2.0])


def test_owner_gated_assign_skipped_on_other_procs():
    x = B.array_ref("x")
    prog = Program("t", [ArrayDecl("x", (4,))],
                   [B.assign(x(0), 1.0, owner=B.num(3))])
    rt = SeqRuntime(prog)      # pid 0 != owner 3
    Interpreter(prog, rt).run()
    assert arr(rt, "x")[0] == 0.0


def test_kernel_views_and_cost():
    x = B.array_ref("x")

    def fn(env, views):
        views["w0"][...] = np.asarray(views["r0"]) * 2.0

    body = [
        B.loop(B.sym("i"), 0, 7, [B.assign(x(B.sym("i")), 1.0 + 0)]),
        B.kernel("dbl", reads=[B.spec("x", (0, 7))],
                 writes=[B.spec("x", (0, 7))], fn=fn, cost=42.0),
    ]
    rt = run(body, [ArrayDecl("x", (8,))])
    np.testing.assert_allclose(arr(rt, "x"), np.full(8, 2.0))
    assert rt.time >= 42.0


def test_indirect_gather():
    x, idx, out = (B.array_ref(n) for n in ("x", "idx", "out"))
    i = B.sym("i")
    body = [
        B.loop(i, 0, 7, [B.assign(x(i), i * 10.0)]),
        B.loop(i, 0, 7, [B.assign(idx(i), 7 - i)]),
        B.loop(i, 0, 7, [B.assign(out(i), x(idx(i)))]),
    ]
    rt = run(body, [ArrayDecl("x", (8,)), ArrayDecl("idx", (8,)),
                    ArrayDecl("out", (8,))])
    np.testing.assert_allclose(arr(rt, "out"), np.arange(7, -1, -1) * 10.0)


def test_float_division_and_unary():
    from repro.lang.expr import Un
    x = B.array_ref("x")
    i = B.sym("i")
    rt = run([B.loop(i, 1, 4, [B.assign(x(i), Un("sqrt", i * i * 1.0))])],
             [ArrayDecl("x", (5,))])
    np.testing.assert_allclose(arr(rt, "x")[1:], [1, 2, 3, 4])


def test_cost_accounting_matches_counts():
    i = B.sym("i")
    x = B.array_ref("x")
    rt = run([B.loop(i, 0, 99, [B.assign(x(i), 1.0 + 0, cost=0.5)])],
             [ArrayDecl("x", (100,))])
    assert rt.time == pytest.approx(50.0)


def test_empty_loop_executes_nothing():
    i = B.sym("i")
    x = B.array_ref("x")
    rt = run([B.loop(i, 5, 4, [B.assign(x(i), 1.0)])],
             [ArrayDecl("x", (8,))])
    assert arr(rt, "x").sum() == 0.0


def test_unbound_symbol_raises():
    x = B.array_ref("x")
    with pytest.raises(InterpError):
        run([B.assign(x(0), B.sym("nope"))], [ArrayDecl("x", (4,))])


def test_negative_coefficient_falls_back_to_scalar():
    """Descending access b(9-i) is unsupported by the vector path but
    must still compute correctly via the scalar fallback."""
    i = B.sym("i")
    x, y = B.array_ref("x"), B.array_ref("y")
    body = [
        B.loop(i, 0, 9, [B.assign(x(i), i * 1.0)]),
        B.loop(i, 0, 9, [B.assign(y(i), x(9 - i))]),
    ]
    rt = run(body, [ArrayDecl("x", (10,)), ArrayDecl("y", (10,))])
    np.testing.assert_allclose(arr(rt, "y"), np.arange(9, -1, -1))


def test_run_seq_returns_shared_arrays_only():
    from repro.apps import get_app
    app = get_app("jacobi")
    seq = run_seq(app.program("tiny", 1))
    assert set(seq.arrays) == {"b"}   # 'a' is private scratch
