"""Unit tests for the crash-recovery subsystem (repro.recovery)."""

import numpy as np
import pytest

from repro.errors import FaultPlanError, ReproError
from repro.faults import (FaultPlan, NodeCrash, NodeOutage,
                          plan_from_dict)
from repro.memory import SharedLayout
from repro.recovery import RecoveryManager, elect_backup
from repro.tm.system import TmSystem


def run(nprocs, main, crashes, page_size=256,
        arrays=(("x", (64,)),), log_limit=None, telemetry=None):
    layout = SharedLayout(page_size=page_size)
    for name, shape in arrays:
        layout.add_array(name, shape)
    system = TmSystem(nprocs=nprocs, layout=layout,
                      faults=FaultPlan(crashes=tuple(crashes)),
                      recovery_log_limit=log_limit,
                      telemetry=telemetry)
    return system.run(main), system


# ---------------------------------------------------------------------------
# Plan validation.
# ---------------------------------------------------------------------------

def test_crash_validation():
    with pytest.raises(FaultPlanError):
        NodeCrash(pid=0, t=-1.0)
    with pytest.raises(FaultPlanError):
        NodeCrash(pid=0, t=10.0, reboot_us=0.0)


def test_duplicate_crash_pid_rejected():
    with pytest.raises(FaultPlanError, match="at most once"):
        FaultPlan(crashes=(NodeCrash(pid=1, t=10.0),
                           NodeCrash(pid=1, t=500.0)))


def test_crash_overlapping_outage_rejected():
    # The reboot window [100, 100 + 20000) intersects the outage.
    with pytest.raises(FaultPlanError, match="overlaps"):
        FaultPlan(crashes=(NodeCrash(pid=2, t=100.0),),
                  outages=(NodeOutage(pid=2, t0=5000.0, t1=6000.0),))
    # Same window on a different pid is fine.
    FaultPlan(crashes=(NodeCrash(pid=2, t=100.0),),
              outages=(NodeOutage(pid=1, t0=5000.0, t1=6000.0),))
    # Disjoint windows on the same pid are fine too.
    FaultPlan(crashes=(NodeCrash(pid=2, t=100.0, reboot_us=1000.0),),
              outages=(NodeOutage(pid=2, t0=5000.0, t1=6000.0),))


def test_plan_from_dict_round_trip():
    plan = FaultPlan(crashes=(NodeCrash(pid=3, t=250.0,
                                        reboot_us=1500.0),))
    again = plan_from_dict(plan.as_dict())
    assert again.crashes == plan.crashes
    assert "1 node crashes" in plan.describe()


def test_recovery_needs_two_processors():
    layout = SharedLayout(page_size=256)
    layout.add_array("x", (64,))
    with pytest.raises(FaultPlanError, match="survivors"):
        TmSystem(nprocs=1, layout=layout,
                 faults=FaultPlan(crashes=(NodeCrash(pid=0, t=1.0),)))
    with pytest.raises(FaultPlanError, match="out of range"):
        TmSystem(nprocs=2, layout=layout,
                 faults=FaultPlan(crashes=(NodeCrash(pid=5, t=1.0),)))


def test_elect_backup_is_deterministic_and_distinct():
    for n in (2, 4, 8):
        for victim in range(n):
            b = elect_backup(victim, n)
            assert 0 <= b < n and b != victim
    assert elect_backup(3, 4) == 0


# ---------------------------------------------------------------------------
# Hand-rolled crash scenarios on a bare TmSystem.
# ---------------------------------------------------------------------------

def _baseline(nprocs, main, **kw):
    layout = SharedLayout(page_size=kw.get("page_size", 256))
    for name, shape in kw.get("arrays", (("x", (64,)),)):
        layout.add_array(name, shape)
    system = TmSystem(nprocs=nprocs, layout=layout)
    return system.run(main)


def test_crash_at_barrier_recovers_bit_identically():
    def main(node):
        x = node.array("x")
        for it in range(4):
            lo = node.pid * 16
            x[lo:lo + 16] = x[lo:lo + 16] + float(node.pid + it)
            node.barrier()
        return float(x[:].sum())

    base = _baseline(4, main)
    res, system = run(4, main, [NodeCrash(pid=2, t=1500.0,
                                          reboot_us=2000.0)])
    assert res.returns == base.returns
    assert system.recovery is not None
    assert system.recovery.summary()["log_messages"] > 0


def test_crash_while_holding_lock_reparks_token():
    def main(node):
        x = node.array("x")
        for _ in range(4):
            node.lock_acquire(1)
            x[0] = x[0] + 1.0
            node.lock_release(1)
        node.barrier()
        return float(x[0])

    base = _baseline(4, main)
    # Crash P2 mid-run: with t inside the lock ladder the crash
    # realizes at an acquire or release, often with the token held.
    res, system = run(4, main, [NodeCrash(pid=2, t=900.0,
                                          reboot_us=1500.0)])
    assert res.returns == base.returns == [16.0] * 4
    assert system.recovery._status[2] == "done"


def test_manager_crash_failover():
    # P0 is the barrier master and static manager of lock 0.
    def main(node):
        x = node.array("x")
        node.lock_acquire(0)
        x[0] = x[0] + 1.0
        node.lock_release(0)
        node.barrier()
        x[8 + node.pid] = x[0]
        node.barrier()
        return float(x[0])

    base = _baseline(4, main)
    res, system = run(4, main, [NodeCrash(pid=0, t=500.0,
                                          reboot_us=1000.0)])
    assert res.returns == base.returns == [4.0] * 4


def test_crash_scheduled_after_exit_never_realizes():
    def main(node):
        x = node.array("x")
        x[node.pid] = 1.0
        node.barrier()
        return float(x[:4].sum())

    res, system = run(4, main, [NodeCrash(pid=1, t=10_000_000.0)])
    assert res.returns == [4.0] * 4
    assert system.recovery._status[1] == "pending"
    assert system.recovery.realized == {}


def test_log_watermark_trims_and_explains():
    def main(node):
        x = node.array("x")
        for it in range(6):
            lo = node.pid * 16
            x[lo:lo + 16] = x[lo:lo + 16] + 1.0
            node.barrier()
        return float(x[:].sum())

    # A one-interval log cannot cover a victim with several closed
    # intervals; the rebuild must either survive on survivor diffs or
    # fail with the watermark diagnostic — never a bare ProtocolError.
    try:
        res, system = run(4, main,
                          [NodeCrash(pid=3, t=2500.0, reboot_us=500.0)],
                          log_limit=1)
    except ReproError as exc:
        assert "log_limit" in str(exc)
    else:
        log = system.recovery._logs[3]
        assert len(log.records) <= 1
        assert res.returns == _baseline(4, main).returns


def test_debug_lines_show_status():
    def main(node):
        x = node.array("x")
        x[node.pid] = 1.0
        node.barrier()

    _, system = run(4, main, [NodeCrash(pid=1, t=200.0,
                                        reboot_us=300.0)])
    lines = system.recovery.debug_lines()
    assert any("recovery P1" in ln and "done" in ln for ln in lines)


def test_applied_watermarks_restored_from_log():
    """The backup log's applied set stops stale own-diff replay."""
    seen = {}

    def main(node):
        x = node.array("x")
        for it in range(4):
            lo = node.pid * 16
            x[lo:lo + 16] = float(it + 1)
            node.barrier()
            # Read a neighbour's band so diffs actually get applied.
            peer = (node.pid + 1) % node.nprocs
            seen[(node.pid, it)] = float(x[peer * 16])
        return float(x[:].sum())

    base = _baseline(4, main)
    res, system = run(4, main, [NodeCrash(pid=1, t=1200.0,
                                          reboot_us=800.0)])
    assert res.returns == base.returns
    # The victim's rebuild restored applied watermarks: its own records
    # are all marked, so none of its own diffs replayed over new bytes.
    log = system.recovery._logs[1]
    assert log.applied or log.records == {}
