"""Tests for the Figure 3/4 facade (paper-named interface)."""

import numpy as np

from repro.memory import Section, SharedLayout
from repro.rt import (AugmentedRuntime, READ, READ_WRITE_ALL, WRITE_ALL)
from repro.tm.system import TmSystem


def run(main, nprocs=2):
    layout = SharedLayout(page_size=256)
    layout.add_array("x", (64,))
    system = TmSystem(nprocs=nprocs, layout=layout)
    return system.run(main)


def test_validate_via_facade():
    def main(node):
        rt = AugmentedRuntime(node)
        x = node.array("x")
        if node.pid == 0:
            rt.Validate(Section.of("x", (0, 31)), WRITE_ALL)
            x[0:32] = 4.0
        node.barrier()
        if node.pid == 1:
            rt.Validate(Section.of("x", (0, 31)), READ)
        return float(x[0:32].sum())

    res = run(main)
    assert res.returns == [128.0, 128.0]
    assert res.stats.diffs_created == 0   # WRITE_ALL took effect


def test_push_via_facade():
    def main(node):
        rt = AugmentedRuntime(node)
        x = node.array("x")
        me = node.pid
        x[me * 16:(me + 1) * 16] = me + 1.0
        other = 1 - me
        reads = [Section.of("x", ((1 - q) * 16, (1 - q) * 16 + 15))
                 for q in range(2)]
        writes = [Section.of("x", (q * 16, q * 16 + 15))
                  for q in range(2)]
        rt.Push(reads, writes)
        return float(x[other * 16:other * 16 + 16].sum())

    res = run(main)
    assert res.returns == [32.0, 16.0]


def test_fetch_apply_primitives():
    def main(node):
        rt = AugmentedRuntime(node)
        x = node.array("x")
        if node.pid == 0:
            x[0:32] = 2.0
        node.barrier()
        if node.pid == 1:
            handle = rt.Fetch_diffs(Section.of("x", (0, 31)))
            node.proc.advance(100.0)      # overlapped compute
            rt.Apply_diffs(handle)
            total = float(x[0:32].sum())
            node.barrier()
            return total
        node.barrier()
        return None

    res = run(main)
    assert res.returns[1] == 64.0
    # The explicit fetch left no faults for the later reads.
    assert res.per_proc[1].read_faults == 0


def test_protect_enable_primitives():
    def main(node):
        rt = AugmentedRuntime(node)
        x = node.array("x")
        sec = Section.of("x", (0, 31))
        rt.Write_enable(sec)
        x[0:32] = 1.0         # no write faults: already enabled
        rt.Write_protect(sec)
        node.barrier()
        return node.stats.write_faults

    res = run(main, nprocs=1)
    assert res.returns == [0]
