"""Unit tests for the XHPF-like data-parallel lowering."""

import numpy as np
import pytest

from repro.apps import get_app
from repro.compiler.hpf import compile_xhpf, lower_xhpf
from repro.errors import HpfError
from repro.lang import build as B
from repro.lang.nodes import ArrayDecl, Program


def test_refuses_locks():
    body = [
        B.acquire(0),
        B.release(0),
        B.barrier("B"),
    ]
    prog = Program("locky", [ArrayDecl("x", (8,))], body)
    with pytest.raises(HpfError, match="lock"):
        compile_xhpf(prog)


def test_refuses_indirect_kernels():
    def fn(env, views):
        pass

    body = [
        B.kernel("k", reads=[B.spec("x", (0, 7))], writes=[],
                 fn=fn, indirect=True),
        B.barrier("B"),
    ]
    prog = Program("indirect", [ArrayDecl("x", (8,))], body)
    with pytest.raises(HpfError, match="indirect"):
        compile_xhpf(prog)


def test_refuses_is():
    app = get_app("is")
    with pytest.raises(HpfError):
        compile_xhpf(app.program("tiny", 4))


def test_compiles_the_five_parallelizable_apps():
    for name in ("jacobi", "fft3d", "shallow", "gauss", "mgs"):
        app = get_app(name)
        plan = compile_xhpf(app.program("tiny", 4))
        assert plan.by_barrier, name


def test_exchange_covers_multi_barrier_gap():
    """Data written before barrier 1 but read only after barrier 2 must
    still arrive (the pending-writes bookkeeping)."""
    i = B.sym("i")
    p = B.sym("p")
    x, y = B.array_ref("x"), B.array_ref("y")
    body = [
        B.local("lo", p * 8, partition=True),
        B.local("hi", (p + 1) * 8 - 1, partition=True),
        B.loop(i, B.sym("lo"), B.sym("hi"), [
            B.assign(x(i), 1.0 * i),
        ]),
        B.barrier("B1"),
        # Nothing reads x here.
        B.loop(i, B.sym("lo"), B.sym("hi"), [
            B.assign(y(i), 2.0),
        ]),
        B.barrier("B2"),
        # Now everyone reads the whole of x.
        B.loop(i, 0, 15, [
            B.assign(y(i), x(i) + 1.0, owner=B.num(0)),
        ]),
        B.barrier("B3"),
    ]
    prog = Program("gap", [ArrayDecl("x", (16,)), ArrayDecl("y", (16,))],
                   body)
    res = lower_xhpf(prog, nprocs=2)
    np.testing.assert_allclose(res.arrays["x"], np.arange(16.0))
    np.testing.assert_allclose(res.arrays["y"], np.arange(16.0) + 1.0)


def test_jacobi_message_count_matches_hand_coded():
    """XHPF Jacobi exchanges exactly the boundary columns: the same
    2(n-1) messages per iteration as the hand-coded version."""
    app = get_app("jacobi")
    n = 4
    r1 = lower_xhpf(app.build_program(
        {"M": 64, "N": 64, "iters": 1}, n), nprocs=n)
    r3 = lower_xhpf(app.build_program(
        {"M": 64, "N": 64, "iters": 3}, n), nprocs=n)
    per_iter = (r3.messages - r1.messages) / 2
    assert per_iter == 2 * (n - 1)


def test_owner_gated_writes_ship_from_owner_only():
    i = B.sym("i")
    x = B.array_ref("x")
    body = [
        B.loop(i, 0, 7, [B.assign(x(i), 5.0, owner=B.num(2))]),
        B.barrier("B1"),
        B.loop(i, 0, 7, [B.assign(x(i), x(i) + 1.0, owner=B.num(0))]),
        B.barrier("B2"),
    ]
    prog = Program("own", [ArrayDecl("x", (8,))], body)
    res = lower_xhpf(prog, nprocs=4)
    np.testing.assert_allclose(res.arrays["x"], np.full(8, 6.0))
    # One shipment P2 -> P0 at B1, one P0 -> everyone-who-reads at B2.
    assert res.messages >= 1
