"""Unit tests for the message-passing library (PVMe stand-in)."""

import numpy as np
import pytest

from repro.machine import MachineConfig
from repro.mp import MpSystem


def run(nprocs, main):
    system = MpSystem(nprocs=nprocs)
    return system.run(main)


def test_send_recv_array_is_copied():
    def main(comm):
        if comm.pid == 0:
            data = np.arange(4.0)
            comm.send(1, data)
            data[:] = -1            # mutation after send must not leak
        else:
            got = comm.recv(src=0)
            return got.sum()

    res = run(2, main)
    assert res.returns[1] == 6.0


def test_bcast_delivers_to_all():
    def main(comm):
        if comm.pid == 2:
            return comm.bcast(2, np.full(3, 7.0)).sum()
        return comm.bcast(2).sum()

    res = run(4, main)
    assert res.returns == [21.0] * 4
    # n-1 point-to-point messages.
    assert res.net.by_kind["mp"] == 3


def test_bcast_pipelining_is_cheaper_than_sends():
    cfg = MachineConfig()

    def bcast_main(comm):
        if comm.pid == 0:
            comm.bcast(0, np.zeros(1))
            return comm.proc.engine.now
        comm.bcast(0)
        return None

    def sends_main(comm):
        if comm.pid == 0:
            for q in range(1, comm.nprocs):
                comm.send(q, np.zeros(1))
            return comm.proc.engine.now
        comm.recv(src=0)
        return None

    t_bcast = run(8, bcast_main).returns[0]
    t_sends = run(8, sends_main).returns[0]
    assert t_bcast < t_sends


def test_barrier_synchronizes():
    def main(comm):
        comm.compute(100.0 * comm.pid)
        comm.barrier()
        return comm.proc.engine.now

    res = run(4, main)
    # Nobody passes before the slowest processor's 300 us of compute.
    assert min(res.returns) >= 300.0
    # Departures stagger by the master's serialized sends only.
    assert max(res.returns) - min(res.returns) < 500.0


def test_allreduce_sum():
    def main(comm):
        return comm.allreduce_sum(float(comm.pid + 1))

    res = run(4, main)
    assert res.returns == [10.0] * 4


def test_message_sizes_counted():
    def main(comm):
        if comm.pid == 0:
            comm.send(1, np.zeros(100))   # 800 bytes
        else:
            comm.recv(src=0)

    res = run(2, main)
    cfg = MachineConfig()
    assert res.net.bytes == 800 + cfg.header_bytes


def test_tag_matching_out_of_order():
    def main(comm):
        if comm.pid == 0:
            comm.send(1, 1.0, tag="a")
            comm.send(1, 2.0, tag="b")
        else:
            b = comm.recv(src=0, tag="b")
            a = comm.recv(src=0, tag="a")
            return (a, b)

    res = run(2, main)
    assert res.returns[1] == (1.0, 2.0)


def test_no_interrupt_cost_for_posted_receives():
    """MP receivers never pay the interrupt cost (paper Section 5)."""
    cfg = MachineConfig()

    def main(comm):
        if comm.pid == 0:
            comm.send(1, None)
        else:
            comm.recv(src=0)
            return comm.proc.engine.now

    res = run(2, main)
    expected = cfg.send_overhead + cfg.wire_time(0) + cfg.recv_overhead
    assert res.returns[1] == pytest.approx(expected)
