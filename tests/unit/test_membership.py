"""Unit tests for elastic membership: plan validation, declarative
JSON plans, and the protocol/mode gating of membership and recovery."""

import pytest

from repro.errors import FaultPlanError, MembershipError, ReproError
from repro.faults import FaultPlan, NodeCrash, plan_from_dict
from repro.membership import (HeartbeatConfig, MembershipPlan, NodeDrain,
                              NodeJoin, NodeSilence)


# ---------------------------------------------------------------------------
# Plan validation: malformed schedules fail loudly at construction.
# ---------------------------------------------------------------------------

def test_heartbeat_thresholds_must_be_ordered():
    with pytest.raises(MembershipError):
        HeartbeatConfig(period_us=500.0, suspect_after_us=400.0)
    with pytest.raises(MembershipError):
        HeartbeatConfig(suspect_after_us=2000.0, evict_after_us=2000.0)
    with pytest.raises(MembershipError):
        HeartbeatConfig(period_us=0.0)


def test_one_membership_event_per_node():
    with pytest.raises(MembershipError, match="duplicated"):
        MembershipPlan(joins=(NodeJoin(1, 100.0),),
                       drains=(NodeDrain(1, 5000.0, 1000.0),))


def test_absence_windows_must_be_disjoint():
    with pytest.raises(MembershipError, match="overlap"):
        MembershipPlan(drains=(NodeDrain(1, 1000.0, 5000.0),),
                       silences=(NodeSilence(2, 3000.0, 1000.0),))
    # Touching windows are fine (half-open).
    plan = MembershipPlan(drains=(NodeDrain(1, 1000.0, 2000.0),),
                          silences=(NodeSilence(2, 3000.0, 1000.0),))
    assert len(plan.events()) == 2


@pytest.mark.parametrize("kw", [
    {"joins": (NodeJoin(-1, 100.0),)},
    {"joins": (NodeJoin(1, -5.0),)},
    {"drains": (NodeDrain(1, 100.0, 0.0),)},
    {"silences": (NodeSilence(1, 100.0, -1.0),)},
])
def test_event_field_validation(kw):
    with pytest.raises(MembershipError):
        MembershipPlan(**kw)


def test_validate_for_cluster_size_and_pid_range():
    plan = MembershipPlan(drains=(NodeDrain(3, 100.0, 500.0),))
    with pytest.raises(MembershipError, match="nprocs >= 2"):
        plan.validate_for(1)
    with pytest.raises(MembershipError, match="out of range"):
        plan.validate_for(2)
    plan.validate_for(4)    # fine


def test_validate_for_rejects_crash_conflicts():
    plan = MembershipPlan(drains=(NodeDrain(1, 1000.0, 500.0),))
    with pytest.raises(MembershipError, match="both crashes"):
        plan.validate_for(4, crashes=(NodeCrash(pid=1, t=9000.0),))
    # The steward (pid + 1) must stay up to serve custody.
    with pytest.raises(MembershipError, match="steward"):
        plan.validate_for(4, crashes=(
            NodeCrash(pid=2, t=9000.0, reboot_us=100.0),))
    # A crash window overlapping the absence window is rejected too.
    with pytest.raises(MembershipError, match="disjoint"):
        plan.validate_for(4, crashes=(
            NodeCrash(pid=3, t=1200.0, reboot_us=5000.0),))
    plan.validate_for(4, crashes=(
        NodeCrash(pid=3, t=9000.0, reboot_us=100.0),))


def test_fault_plan_cross_checks_membership():
    mplan = MembershipPlan(drains=(NodeDrain(1, 5000.0, 1000.0),))
    with pytest.raises(FaultPlanError):
        FaultPlan(crashes=(NodeCrash(pid=1, t=100.0),),
                  membership=mplan)
    with pytest.raises(FaultPlanError, match="MembershipPlan"):
        FaultPlan(membership=42)
    plan = FaultPlan(membership=mplan)
    assert "membership" in plan.describe()
    assert plan.as_dict()["membership"]["drains"][0]["pid"] == 1


# ---------------------------------------------------------------------------
# Declarative JSON plans (satellite: unknown keys list accepted keys).
# ---------------------------------------------------------------------------

def test_plan_from_dict_membership_round_trip():
    spec = {"membership": {
        "heartbeat": {"period_us": 250.0, "suspect_after_us": 1000.0,
                      "evict_after_us": 3000.0},
        "joins": [{"pid": 3, "t": 1200.0}],
        "drains": [{"pid": 1, "t": 5000.0, "away_us": 800.0}],
    }}
    plan = plan_from_dict(spec)
    m = plan.membership
    assert m.heartbeat.period_us == 250.0
    assert m.joins[0].pid == 3 and m.drains[0].away_us == 800.0
    # as_dict() -> plan_from_dict() closes the loop.
    again = plan_from_dict(plan.as_dict())
    assert again.membership.as_dict() == m.as_dict()


@pytest.mark.parametrize("spec,where", [
    ({"bogus": 1}, "fault plan"),
    ({"membership": {"leaves": []}}, "membership"),
    ({"membership": {"heartbeat": {"period": 100}}}, "heartbeat"),
    ({"membership": {"drains": [{"pid": 1, "t": 1.0, "for": 2.0}]}},
     "drains"),
    ({"crashes": [{"pid": 1, "t": 1.0, "boom": True}]}, "crashes"),
    ({"outages": [{"pid": 1, "t0": 1.0, "t1": 2.0, "why": "x"}]},
     "outages"),
])
def test_plan_from_dict_unknown_keys_list_accepted(spec, where):
    with pytest.raises(FaultPlanError) as ei:
        plan_from_dict(spec)
    text = str(ei.value)
    assert "accepted keys are" in text
    assert where in text


def test_plan_from_dict_missing_keys_list_accepted():
    with pytest.raises(FaultPlanError) as ei:
        plan_from_dict({"crashes": [{"pid": 1}]})
    text = str(ei.value)
    assert "missing required key(s)" in text and "'t'" in text
    assert "accepted keys are" in text


# ---------------------------------------------------------------------------
# Protocol/mode gating: crash recovery and elastic membership are
# mw-lrc-only, surfaced as typed errors instead of a buried comment.
# ---------------------------------------------------------------------------

def _crash_plan():
    return FaultPlan(crashes=(NodeCrash(pid=1, t=5000.0),))


def _member_plan():
    return FaultPlan(membership=MembershipPlan(
        drains=(NodeDrain(1, 5000.0, 1000.0),)))


def test_runspec_rejects_crashes_with_other_protocols():
    from repro.harness import RunSpec, run
    spec = RunSpec(app="jacobi", mode="dsm", dataset="tiny", nprocs=4,
                   opt="aggr", protocol="hlrc", faults=_crash_plan())
    with pytest.raises(ReproError, match="mw-lrc"):
        run(spec)


def test_runspec_rejects_membership_with_other_protocols():
    from repro.harness import RunSpec, run
    spec = RunSpec(app="jacobi", mode="dsm", dataset="tiny", nprocs=4,
                   opt="aggr", protocol="adaptive",
                   faults=_member_plan())
    with pytest.raises(ReproError, match="mw-lrc"):
        run(spec)


def test_runspec_rejects_membership_outside_dsm():
    from repro.harness import RunSpec, run
    spec = RunSpec(app="jacobi", mode="mp", dataset="tiny", nprocs=4,
                   faults=_member_plan())
    with pytest.raises(ReproError, match="membership"):
        run(spec)


def test_recover_cli_rejects_other_protocols():
    from repro.__main__ import recover_main
    with pytest.raises(ReproError, match="mw-lrc"):
        recover_main(["--apps", "jacobi", "--protocol", "hlrc"])


def test_elastic_cli_rejects_other_protocols():
    from repro.__main__ import elastic_main
    with pytest.raises(ReproError, match="mw-lrc"):
        elastic_main(["--apps", "jacobi", "--protocol", "adaptive"])
