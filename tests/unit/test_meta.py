"""Unit + property tests for interval metadata and ordering."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tm.meta import IntervalRecord, interval_wire_bytes


def rec(writer, index, vc, pages=(0,)):
    return IntervalRecord(writer, index, tuple(vc), tuple(pages),
                          frozenset())


def test_happens_before_basic():
    a = rec(0, 1, [1, 0])
    b = rec(1, 1, [1, 1])
    assert a.happens_before(b)
    assert not b.happens_before(a)
    assert not a.happens_before(a)   # irreflexive


def test_concurrent_intervals():
    a = rec(0, 1, [1, 0])
    b = rec(1, 1, [0, 1])
    assert not a.happens_before(b)
    assert not b.happens_before(a)


vcs = st.lists(st.integers(0, 5), min_size=3, max_size=3)


@given(vcs, vcs, vcs)
@settings(max_examples=200)
def test_happens_before_is_transitive(v1, v2, v3):
    a, b, c = rec(0, 1, v1), rec(1, 1, v2), rec(2, 1, v3)
    if a.happens_before(b) and b.happens_before(c):
        assert a.happens_before(c)


@given(vcs, vcs)
@settings(max_examples=200)
def test_order_key_extends_happens_before(v1, v2):
    """The total order used to apply diffs must respect causality."""
    a, b = rec(0, 1, v1), rec(1, 1, v2)
    if a.happens_before(b):
        assert a.order_key() < b.order_key()
    if b.happens_before(a):
        assert b.order_key() < a.order_key()


def test_wire_bytes_accounting():
    r = rec(0, 1, [1, 0, 0], pages=(1, 2, 3))
    # 8 header + 3*4 vc entries + 3*4 page ids
    assert r.wire_bytes() == 8 + 12 + 12
    assert interval_wire_bytes([r, r]) == 2 * r.wire_bytes()


def test_key():
    assert rec(3, 7, [0, 0, 0, 0, 0, 0, 0, 7]).key == (3, 7)
