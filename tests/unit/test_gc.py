"""Tests of barrier-time garbage collection (TreadMarks-style)."""

import numpy as np
import pytest

from repro.memory import Section, SharedLayout
from repro.rt import AccessType
from repro.tm.system import TmSystem


def run(nprocs, main, gc_threshold=None, page_size=256, size=64):
    layout = SharedLayout(page_size=page_size)
    layout.add_array("x", (size,))
    system = TmSystem(nprocs=nprocs, layout=layout,
                      gc_threshold=gc_threshold)
    return system.run(main), system


def iterating_main(iters):
    def main(node):
        x = node.array("x")
        chunk = 64 // node.nprocs
        lo, hi = node.pid * chunk, (node.pid + 1) * chunk
        total = 0.0
        for it in range(iters):
            x[lo:hi] = float(it + 1) * (node.pid + 1)
            node.barrier()
            total = float(x[0:64].sum())
            node.barrier()
        return total

    return main


def expected(iters, nprocs):
    chunk = 64 // nprocs
    return float(iters) * chunk * sum(range(1, nprocs + 1))


def test_gc_preserves_correctness():
    res, system = run(4, iterating_main(12), gc_threshold=10)
    assert res.returns == [expected(12, 4)] * 4
    assert all(n.gc_rounds >= 1 for n in system.nodes)


def test_gc_bounds_interval_memory():
    _, without = run(4, iterating_main(20))
    _, with_gc = run(4, iterating_main(20), gc_threshold=16)
    peak_without = max(len(n.intervals) for n in without.nodes)
    peak_with = max(len(n.intervals) for n in with_gc.nodes)
    assert peak_with < peak_without
    assert all(n.gc_rounds >= 1 for n in with_gc.nodes)


def test_gc_costs_messages():
    """The validation burst and the rendezvous are real traffic."""
    res_plain, _ = run(4, iterating_main(12))
    res_gc, _ = run(4, iterating_main(12), gc_threshold=10)
    assert res_gc.messages >= res_plain.messages
    assert res_gc.time >= res_plain.time


def test_gc_with_locks():
    def main(node):
        x = node.array("x")
        for _ in range(6):
            node.lock_acquire(1)
            x[0] = x[0] + 1.0
            node.lock_release(1)
            node.barrier()
        return float(x[0])

    res, system = run(4, main, gc_threshold=8)
    assert res.returns == [24.0] * 4
    assert any(n.gc_rounds for n in system.nodes)


def test_gc_with_validates():
    def main(node):
        x = node.array("x")
        chunk = 64 // node.nprocs
        lo, hi = node.pid * chunk, (node.pid + 1) * chunk
        sec_own = Section.of("x", (lo, hi - 1))
        for it in range(8):
            node.validate([sec_own], AccessType.WRITE_ALL)
            x[lo:hi] = float(it + 1)
            node.barrier()
            node.validate([Section.of("x", (0, 63))], AccessType.READ)
            total = float(x[0:64].sum())
            node.barrier()
        return total

    res, system = run(4, main, gc_threshold=8)
    assert res.returns == [8.0 * 64] * 4
    assert any(n.gc_rounds for n in system.nodes)


def test_gc_then_snapshot():
    res, system = run(4, iterating_main(10), gc_threshold=8)
    snap = system.snapshot()
    chunk = 16
    for p in range(4):
        np.testing.assert_allclose(snap["x"][p * chunk:(p + 1) * chunk],
                                   10.0 * (p + 1))


def test_no_gc_below_threshold():
    _, system = run(2, iterating_main(2), gc_threshold=10 ** 6)
    assert all(n.gc_rounds == 0 for n in system.nodes)
