"""Error-path and edge-case tests across the stack."""

import numpy as np
import pytest

from repro.errors import (CompileError, InterpError, LayoutError,
                          ProtocolError, SimulationError)
from repro.lang import build as B
from repro.lang.nodes import ArrayDecl, Program
from repro.memory import Section, SharedLayout
from repro.sim import Engine
from repro.tm.system import TmSystem


def test_release_unheld_lock_raises():
    layout = SharedLayout(page_size=256)
    layout.add_array("x", (8,))
    system = TmSystem(nprocs=2, layout=layout)

    def main(node):
        if node.pid == 0:
            node.lock_release(3)

    with pytest.raises(SimulationError) as info:
        system.run(main)
    assert isinstance(info.value.__cause__, ProtocolError)


def test_engine_rejects_past_events():
    engine = Engine()

    def main(proc):
        proc.advance(10.0)
        with pytest.raises(SimulationError):
            proc.engine.call_at(1.0, lambda: None)

    engine.add_process("p", main)
    engine.run()


def test_engine_cannot_run_twice():
    engine = Engine()
    engine.add_process("p", lambda proc: proc.advance(1.0))
    engine.run()
    with pytest.raises(SimulationError):
        engine.run()


def test_cannot_add_process_after_run():
    engine = Engine()
    engine.add_process("p", lambda proc: None)
    engine.run()
    with pytest.raises(SimulationError):
        engine.add_process("q", lambda proc: None)


def test_section_out_of_bounds_rejected_by_layout():
    layout = SharedLayout(page_size=256)
    layout.add_array("x", (8,))
    with pytest.raises(LayoutError):
        layout.byte_ranges(Section.of("x", (0, 100)))
    with pytest.raises(LayoutError):
        layout.byte_ranges(Section.of("y", (0, 3)))


def test_interp_unknown_array():
    x = B.array_ref("nope")
    prog = Program("t", [ArrayDecl("x", (8,))],
                   [B.assign(x(0), 1.0)])
    from repro.interp import Interpreter, SeqRuntime
    with pytest.raises(InterpError):
        Interpreter(prog, SeqRuntime(prog)).run()


def test_transform_refuses_conditional_sync():
    body = [B.when(B.sym("p").eq(0), [B.barrier("b")])]
    prog = Program("t", [ArrayDecl("x", (8,))], body)
    from repro.compiler import OptConfig, transform
    with pytest.raises(CompileError):
        transform(prog, OptConfig(name="o"))


def test_zero_size_sections_are_skipped_by_validate():
    """Empty evaluated sections (clipped away) must not crash."""
    layout = SharedLayout(page_size=256)
    layout.add_array("x", (8,))
    system = TmSystem(nprocs=1, layout=layout)

    def main(node):
        from repro.rt import AccessType
        # Empty after construction: lo > hi.
        node.validate([Section("x", ((5, 3, 1),))], AccessType.READ)
        node.barrier()

    res = system.run(main)
    assert res.time >= 0


def test_single_processor_system_works():
    layout = SharedLayout(page_size=256)
    layout.add_array("x", (16,))
    system = TmSystem(nprocs=1, layout=layout)

    def main(node):
        x = node.array("x")
        node.lock_acquire(0)
        x[0:16] = 3.0
        node.lock_release(0)
        node.barrier()
        return float(x[0:16].sum())

    res = system.run(main)
    assert res.returns == [48.0]
    assert res.messages == 0


def test_program_missing_param_raises():
    i = B.sym("i")
    x = B.array_ref("x")
    prog = Program("t", [ArrayDecl("x", (8,))],
                   [B.loop(i, 0, B.sym("N") - 1, [B.assign(x(i), 1.0)])])
    from repro.interp import Interpreter, SeqRuntime
    with pytest.raises(InterpError):
        Interpreter(prog, SeqRuntime(prog)).run()


def test_snapshot_on_diverged_returns_consistent_state():
    """Snapshot after a normal run equals what any reader would see."""
    layout = SharedLayout(page_size=256)
    layout.add_array("x", (32,))
    system = TmSystem(nprocs=2, layout=layout)

    def main(node):
        x = node.array("x")
        x[node.pid * 16:(node.pid + 1) * 16] = node.pid + 1.0
        node.barrier()
        return float(x[0:32].sum())

    res = system.run(main)
    snap = system.snapshot()
    assert snap["x"].sum() == res.returns[0]
