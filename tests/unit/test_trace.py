"""Protocol event tracing through the unified telemetry bus.

The deprecated ``repro.tm.trace.Tracer`` shim is gone; these tests
cover the same ground against the one remaining tracing path: pass a
:class:`repro.telemetry.Telemetry` to :class:`TmSystem` and read the
``tm.*`` events off ``telemetry.bus``.
"""

from repro.memory import Section, SharedLayout
from repro.rt import AccessType
from repro.telemetry import Telemetry
from repro.tm.system import TmSystem


def traced_run(main, nprocs=2):
    layout = SharedLayout(page_size=256)
    layout.add_array("x", (64,))
    tel = Telemetry()
    system = TmSystem(nprocs=nprocs, layout=layout, telemetry=tel)
    res = system.run(main)
    return res, tel


def tm_events(tel, kind=None, pid=None):
    return [ev for ev in tel.bus.events
            if ev.kind.startswith("tm.")
            and (kind is None or ev.kind == kind)
            and (pid is None or ev.pid == pid)]


def test_records_barriers_and_intervals():
    def main(node):
        x = node.array("x")
        if node.pid == 0:
            x[0:8] = 1.0
        node.barrier()

    res, tel = traced_run(main)
    counts = tel.counts()
    # One explicit + one exit barrier per processor.
    assert counts["tm.barrier"] == 4
    assert counts["tm.interval"] >= 1


def test_records_locks_and_grants():
    def main(node):
        x = node.array("x")
        node.lock_acquire(1)
        x[0] = x[0] + 1.0
        node.lock_release(1)
        node.barrier()

    res, tel = traced_run(main)
    counts = tel.counts()
    assert counts["tm.lock_acquire"] == 2
    assert counts["tm.lock_release"] == 2
    assert counts.get("tm.lock_grant", 0) >= 1
    grants = tm_events(tel, kind="tm.lock_grant")
    assert all(ev.args["lid"] == 1 for ev in grants)


def test_records_validates():
    def main(node):
        x = node.array("x")
        node.validate([Section.of("x", (0, 31))], AccessType.READ)
        node.barrier()

    res, tel = traced_run(main)
    validates = tm_events(tel, kind="tm.validate")
    assert len(validates) == 2
    assert all(not ev.args.get("w_sync") for ev in validates)


def test_filter_and_order():
    def main(node):
        x = node.array("x")
        if node.pid == 0:
            x[0:8] = 1.0
        node.barrier()
        _ = x[0:8]
        node.barrier()

    res, tel = traced_run(main)
    only_p1 = tm_events(tel, pid=1)
    assert only_p1 and all(ev.pid == 1 for ev in only_p1)
    events = sorted(tm_events(tel), key=lambda e: (e.ts, e.pid))
    times = [ev.ts for ev in events]
    assert times == sorted(times)
    assert any(ev.kind == "tm.barrier" for ev in events)


def test_untraced_system_unaffected():
    layout = SharedLayout(page_size=256)
    layout.add_array("x", (64,))
    system = TmSystem(nprocs=2, layout=layout)

    def main(node):
        node.barrier()

    res = system.run(main)   # no telemetry: plain run
    assert res.time > 0
