"""Tests for the optional protocol tracer."""

from repro.memory import Section, SharedLayout
from repro.rt import AccessType
from repro.tm.system import TmSystem
from repro.tm.trace import Tracer


def traced_run(main, nprocs=2):
    layout = SharedLayout(page_size=256)
    layout.add_array("x", (64,))
    system = TmSystem(nprocs=nprocs, layout=layout)
    tracer = Tracer.attach(system)
    res = system.run(main)
    return res, tracer


def test_records_barriers_and_intervals():
    def main(node):
        x = node.array("x")
        if node.pid == 0:
            x[0:8] = 1.0
        node.barrier()

    res, tracer = traced_run(main)
    counts = tracer.counts()
    # One explicit + one exit barrier per processor.
    assert counts["barrier"] == 4
    assert counts["interval"] >= 1


def test_records_locks_and_grants():
    def main(node):
        x = node.array("x")
        node.lock_acquire(1)
        x[0] = x[0] + 1.0
        node.lock_release(1)
        node.barrier()

    res, tracer = traced_run(main)
    counts = tracer.counts()
    assert counts["lock_acquire"] == 2
    assert counts["lock_release"] == 2
    assert counts.get("lock_grant", 0) >= 1


def test_records_validates():
    def main(node):
        x = node.array("x")
        node.validate([Section.of("x", (0, 31))], AccessType.READ)
        node.barrier()

    res, tracer = traced_run(main)
    assert tracer.counts()["validate"] == 2


def test_filter_and_format():
    def main(node):
        x = node.array("x")
        if node.pid == 0:
            x[0:8] = 1.0
        node.barrier()
        _ = x[0:8]
        node.barrier()

    res, tracer = traced_run(main)
    only_p1 = tracer.filter(pid=1)
    assert only_p1 and all(e.pid == 1 for e in only_p1)
    text = tracer.format(kinds={"barrier"})
    assert "barrier" in text
    times = [e.time for e in tracer.filter()]
    assert times == sorted(times)


def test_untraced_system_unaffected():
    layout = SharedLayout(page_size=256)
    layout.add_array("x", (64,))
    system = TmSystem(nprocs=2, layout=layout)

    def main(node):
        node.barrier()

    res = system.run(main)   # no tracer attached: plain run
    assert res.time > 0
