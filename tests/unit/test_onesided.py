"""Unit tests for the one-sided (RDMA-style) data plane.

Covers the window capability model (value / byte / word flavors,
guards, typed :class:`WindowError` on wild ops), the batched transport
(doorbell coalescing, one completion per sync batch), the accounting
doctrine (dedicated ``onesided_*`` counters, never ``messages``), and
the cost model charges.
"""

import pytest

from repro.errors import WindowError
from repro.machine import MachineConfig
from repro.net import Network, OneSidedPlane
from repro.net import onesided as ops
from repro.sim import Engine


def build(nprocs, mains, config=None):
    """Engine + network with the one-sided plane armed."""
    engine = Engine()
    config = config or MachineConfig(nprocs=nprocs)
    net = Network(engine, config, nprocs)
    net.onesided = OneSidedPlane(net)
    endpoints = {}
    for i, main in enumerate(mains):
        proc = engine.add_process(f"p{i}", lambda p, m=main: m(p, endpoints))
        endpoints[i] = net.attach(proc)
    return engine, net, endpoints


def idle(proc, eps):
    pass


# ----------------------------------------------------------------------
# Window flavors.
# ----------------------------------------------------------------------

def test_value_window_read():
    got = {}

    def reader(proc, eps):
        got["res"] = eps[0].net.onesided.remote_read(0, 1, ("diff", 3))

    def owner(proc, eps):
        eps[1].net.onesided.register(1, ("diff", 3),
                                     value={"page": 3}, nbytes=96)

    engine, net, _ = build(2, [reader, owner])
    engine.run()
    assert got["res"] == ({"page": 3}, 96)


def test_byte_window_ranged_read():
    image = bytes(range(256))
    got = {}

    def reader(proc, eps):
        plane = eps[0].net.onesided
        got["mid"] = plane.remote_read(0, 1, ("image",), off=16, length=8)
        got["all"] = plane.remote_read(0, 1, ("image",))

    def owner(proc, eps):
        eps[1].net.onesided.register(
            1, ("image",), nbytes=len(image),
            reader=lambda off, length: image[off:off + length])

    engine, _, _ = build(2, [reader, owner])
    engine.run()
    assert got["mid"] == (image[16:24], 8)
    assert got["all"] == (image, 256)


def test_word_window_cas_and_faa():
    got = {}

    def worker(proc, eps):
        plane = eps[0].net.onesided
        got["cas_ok"] = plane.remote_cas(0, 1, ("lock", 0), "state", 0, 1)
        got["cas_lost"] = plane.remote_cas(0, 1, ("lock", 0), "state", 0, 1)
        got["faa0"] = plane.remote_faa(0, 1, ("lock", 0), "tickets", 5)
        got["faa1"] = plane.remote_faa(0, 1, ("lock", 0), "tickets", 2)

    def owner(proc, eps):
        eps[1].net.onesided.register(1, ("lock", 0),
                                     words={"state": 0})

    engine, net, _ = build(2, [worker, owner])
    engine.run()
    assert got["cas_ok"] == (True, 0)
    assert got["cas_lost"] == (False, 1)     # found the held token
    assert got["faa0"] == 0                  # missing word starts at 0
    assert got["faa1"] == 5
    assert net.stats.onesided_cas_failures == 1


def test_guard_veto_is_a_miss_not_an_error():
    got = {}

    def reader(proc, eps):
        got["res"] = eps[0].net.onesided.remote_read(0, 1, ("page", 7))

    def owner(proc, eps):
        eps[1].net.onesided.register(1, ("page", 7), value=b"x",
                                     nbytes=1, guard=lambda op: False)

    engine, _, _ = build(2, [reader, owner])
    engine.run()
    assert got["res"] is None


def test_write_deposits_via_callback():
    box = []

    def writer(proc, eps):
        eps[0].net.onesided.remote_write(0, 1, ("push",),
                                         ("hello", 1), 64)

    def owner(proc, eps):
        eps[1].net.onesided.register(
            1, ("push",), on_write=lambda v, n: box.append((v, n)))

    engine, _, _ = build(2, [writer, owner])
    engine.run()
    assert box == [(("hello", 1), 64)]


# ----------------------------------------------------------------------
# Wild ops: typed errors naming window and range.
# ----------------------------------------------------------------------

def _capture_error(got, fn):
    """Run ``fn`` in-process, recording the WindowError it must raise
    (sync-batch errors surface at the initiator's ``post_wait``)."""
    try:
        fn()
    except WindowError as exc:
        got["err"] = str(exc)
    else:
        got["err"] = None


def test_unregistered_window_raises_window_error():
    got = {}

    def reader(proc, eps):
        _capture_error(got, lambda: eps[0].net.onesided.remote_read(
            0, 1, ("nope", 9)))

    engine, _, _ = build(2, [reader, idle])
    engine.run()
    assert "('nope', 9)" in got["err"]
    assert "not registered" in got["err"]


def test_out_of_bounds_read_names_window_and_range():
    got = {}

    def reader(proc, eps):
        _capture_error(got, lambda: eps[0].net.onesided.remote_read(
            0, 1, ("image",), off=96, length=64))

    def owner(proc, eps):
        eps[1].net.onesided.register(1, ("image",), nbytes=128,
                                     reader=lambda off, length: b"")

    engine, _, _ = build(2, [reader, owner])
    engine.run()
    assert "('image',)" in got["err"]
    assert "[96, 160)" in got["err"] and "[0, 128)" in got["err"]


def test_missing_capability_raises():
    got = {}

    def writer(proc, eps):
        # A value window with no on_write is not a write target.
        _capture_error(got, lambda: eps[0].net.onesided.remote_write(
            0, 1, ("ro",), b"x", 1, sync=True))

    def owner(proc, eps):
        eps[1].net.onesided.register(1, ("ro",), value=b"v", nbytes=1)

    engine, _, _ = build(2, [writer, owner])
    engine.run()
    assert "not writable" in got["err"]


def test_posted_wild_write_raises_at_service_time():
    def writer(proc, eps):
        eps[0].net.onesided.remote_write(0, 1, ("nope",), b"x", 1)

    engine, _, _ = build(2, [writer, idle])
    with pytest.raises(WindowError, match="not registered"):
        engine.run()


# ----------------------------------------------------------------------
# Batching, accounting, cost model.
# ----------------------------------------------------------------------

def test_batch_one_doorbell_many_ops():
    def writer(proc, eps):
        eps[0].net.onesided.write_batch(
            0, 1, [(("push",), i, 32) for i in range(5)])

    box = []

    def owner(proc, eps):
        eps[1].net.onesided.register(
            1, ("push",), on_write=lambda v, n: box.append(v))

    engine, net, _ = build(2, [writer, owner])
    engine.run()
    assert box == list(range(5))
    assert net.stats.onesided_batches == 1
    assert net.stats.onesided_ops == 5
    assert net.stats.onesided_bytes == 5 * 32


def test_onesided_frames_not_in_message_books():
    def reader(proc, eps):
        eps[0].net.onesided.remote_read(0, 1, ("v",))

    def owner(proc, eps):
        eps[1].net.onesided.register(1, ("v",), value=1, nbytes=8)

    engine, net, _ = build(2, [reader, owner])
    engine.run()
    assert net.stats.messages == 0
    assert net.stats.onesided_batches == 1
    assert net.stats.onesided_ops == 1
    assert net.stats.onesided_bytes == 8          # read bytes at cmpl
    assert net.stats.onesided_by_op["read"] == 1


def test_read_batch_sync_results_in_op_order():
    got = {}

    def reader(proc, eps):
        got["res"] = eps[0].net.onesided.read_batch_sync(
            0, 1, [("a",), ("b",), ("c",)])

    def owner(proc, eps):
        plane = eps[1].net.onesided
        plane.register(1, ("a",), value="A", nbytes=1)
        plane.register(1, ("b",), value="B", nbytes=1,
                       guard=lambda op: False)
        plane.register(1, ("c",), value="C", nbytes=1)

    engine, _, _ = build(2, [reader, owner])
    engine.run()
    assert got["res"] == [("A", 1), None, ("C", 1)]


def test_destination_process_never_scheduled():
    """The whole point: a sync read completes while the owner's
    process stays blocked in an unrelated receive."""
    got = {}

    def reader(proc, eps):
        got["res"] = eps[0].net.onesided.remote_read(0, 1, ("v",))
        eps[0].send(1, "stop")

    def owner(proc, eps):
        eps[1].net.onesided.register(1, ("v",), value=7, nbytes=8)
        t0 = proc.engine.now
        eps[1].recv(kind="stop")
        got["owner_blocked_span"] = proc.engine.now - t0

    engine, _, _ = build(2, [reader, owner])
    engine.run()
    assert got["res"] == (7, 8)
    assert got["owner_blocked_span"] > 0.0


def test_deregister_where():
    engine = Engine()
    net = Network(engine, MachineConfig(nprocs=2), 2)
    plane = OneSidedPlane(net)
    plane.register(1, ("diff", 0, 4), value=1, nbytes=8)
    plane.register(1, ("diff", 1, 5), value=2, nbytes=8)
    plane.register(1, ("image",), nbytes=64,
                   reader=lambda off, length: b"")
    assert plane.deregister_where(1, lambda k: k[0] == "diff") == 2
    assert plane.window(1, ("diff", 0, 4)) is None
    assert plane.window(1, ("image",)) is not None


def test_doorbell_and_poll_costs_charged():
    cfg = MachineConfig(nprocs=2)
    t = {}

    def reader(proc, eps):
        eps[0].net.onesided.remote_read(0, 1, ("v",))
        t["end"] = proc.engine.now

    def owner(proc, eps):
        eps[1].net.onesided.register(1, ("v",), value=1, nbytes=8)

    engine, _, _ = build(2, [reader, owner], config=cfg)
    engine.run()
    wire = cfg.rdma_op_bytes * 1
    expected = (cfg.rdma_post_cost + cfg.wire_time(wire)
                + cfg.rdma_op_service + cfg.wire_time(8)
                + cfg.rdma_poll_cost)
    assert t["end"] == pytest.approx(expected)
