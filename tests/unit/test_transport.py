"""Unit tests for the reliable transport, recv timeouts, and the
deadlock diagnostics that make lost messages debuggable."""

import pytest

from repro.errors import (FaultPlanError, ReceiveTimeout,
                          SimulationDeadlock, SimulationError,
                          TransportError)
from repro.faults import FaultPlan, LinkFaults
from repro.machine import MachineConfig
from repro.net import ACK_KIND, Network, TransportConfig
from repro.sim import Engine


def build(nprocs, mains, config=None, faults=None, transport=None):
    engine = Engine()
    config = config or MachineConfig(nprocs=nprocs)
    net = Network(engine, config, nprocs, faults=faults,
                  transport=transport)
    endpoints = {}
    for i, main in enumerate(mains):
        proc = engine.add_process(f"p{i}", lambda p, m=main: m(p, endpoints))
        endpoints[i] = net.attach(proc)
    return engine, net, endpoints


# ---------------------------------------------------------------------------
# Config validation.
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("kw", [
    {"rto_us": 0.0}, {"rto_us": -1.0}, {"backoff": 0.5},
    {"max_retries": -1}, {"ack_overhead_us": -1.0}, {"ack_bytes": -1},
])
def test_transport_config_validation(kw):
    with pytest.raises(FaultPlanError):
        TransportConfig(**kw)


def test_backoff_timeouts_grow_exponentially():
    cfg = TransportConfig(rto_us=100.0, backoff=2.0)
    assert [cfg.timeout_for(r) for r in range(3)] == [100.0, 200.0, 400.0]


# ---------------------------------------------------------------------------
# Wiring: default off, auto-enabled by a fault plan.
# ---------------------------------------------------------------------------

def test_transport_off_by_default():
    engine, net, _ = build(2, [lambda p, e: None, lambda p, e: None])
    assert net.transport is None and net.injector is None


def test_fault_plan_auto_enables_transport():
    engine, net, _ = build(2, [lambda p, e: None, lambda p, e: None],
                           faults=FaultPlan())
    assert net.transport is not None and net.injector is not None


def test_transport_true_without_faults():
    engine, net, _ = build(2, [lambda p, e: None, lambda p, e: None],
                           transport=True)
    assert net.transport is not None and net.injector is None


# ---------------------------------------------------------------------------
# Mechanics on a perfect fabric: one data frame, one ack, no retries.
# ---------------------------------------------------------------------------

def test_transport_delivers_and_acks_without_faults():
    got = {}

    def sender(proc, eps):
        eps[0].send(1, "data", payload="hi", size=10)

    def receiver(proc, eps):
        got["payload"] = eps[1].recv(kind="data").payload

    engine, net, _ = build(2, [sender, receiver], transport=True)
    engine.run()
    assert got["payload"] == "hi"
    assert net.stats.retransmits == 0
    assert net.stats.acks == 1
    assert net.stats.by_kind[ACK_KIND] == 1
    # The ack counts as a message: 1 data + 1 ack.
    assert net.stats.messages == 2
    assert net.transport.unacked_frames() == 0


def test_lost_acks_cause_retransmits_but_exactly_once_delivery():
    """Data always arrives, every ack is lost: the sender retries until
    the budget runs out, but the receiver sees each message once."""
    got = []

    def sender(proc, eps):
        for i in range(5):
            eps[0].send(1, "data", payload=i)

    def receiver(proc, eps):
        for _ in range(5):
            got.append(eps[1].recv(kind="data").payload)

    # Faults only on the ack direction (1 -> 0).
    plan = FaultPlan(links={(1, 0): LinkFaults(drop=1.0)})
    tp = TransportConfig(rto_us=500.0, max_retries=2)
    engine, net, _ = build(2, [sender, receiver], faults=plan,
                           transport=tp)
    with pytest.raises(SimulationError) as ei:
        engine.run()        # the retry budget eventually trips
    assert isinstance(ei.value.__cause__, TransportError) or \
        isinstance(ei.value, TransportError)
    assert got == [0, 1, 2, 3, 4]           # exactly once, in order
    assert net.stats.retransmits > 0
    assert net.stats.dup_frames_discarded > 0


def test_dead_link_raises_typed_transport_error():
    def sender(proc, eps):
        eps[0].send(1, "data", payload=1)

    def receiver(proc, eps):
        eps[1].recv(kind="data")

    plan = FaultPlan(links={(0, 1): LinkFaults(drop=1.0)})
    tp = TransportConfig(rto_us=100.0, max_retries=3)
    engine, net, _ = build(2, [sender, receiver], faults=plan,
                           transport=tp)
    with pytest.raises(TransportError) as ei:
        engine.run()
    text = str(ei.value)
    assert "P0->P1" in text and "'data'" in text and "3 retries" in text
    assert net.stats.retransmits == 3


def test_retry_exhaustion_reports_unacked_sequence_range():
    """The budget-exhaustion error names the endpoints and the full
    range of frames still unacked on the channel, not just the one
    frame whose timer tripped."""
    def sender(proc, eps):
        for i in range(3):
            eps[0].send(1, "data", payload=i)

    def receiver(proc, eps):
        eps[1].recv(kind="data")

    plan = FaultPlan(links={(0, 1): LinkFaults(drop=1.0)})
    tp = TransportConfig(rto_us=100.0, max_retries=2)
    engine, _, _ = build(2, [sender, receiver], faults=plan,
                         transport=tp)
    with pytest.raises(TransportError) as ei:
        engine.run()
    text = str(ei.value)
    assert "channel P0->P1" in text
    assert "3 frame(s) unacked on this channel" in text
    assert "seq 0..2" in text


def test_duplicated_fabric_copies_are_discarded():
    got = []

    def sender(proc, eps):
        for i in range(4):
            eps[0].send(1, "data", payload=i)

    def receiver(proc, eps):
        for _ in range(4):
            got.append(eps[1].recv(kind="data").payload)

    plan = FaultPlan.uniform(seed=5, dup=1.0)
    engine, net, _ = build(2, [sender, receiver], faults=plan)
    engine.run()
    assert got == [0, 1, 2, 3]
    assert net.stats.dup_frames_discarded >= 4
    assert net.stats.faults_duplicated >= 4


def test_reordered_frames_are_delivered_in_send_order():
    got = []

    def sender(proc, eps):
        for i in range(6):
            eps[0].send(1, "data", payload=i)

    def receiver(proc, eps):
        for _ in range(6):
            got.append(eps[1].recv(kind="data").payload)

    plan = FaultPlan.uniform(seed=11, reorder=0.9, delay_mean_us=2000.0)
    engine, net, _ = build(2, [sender, receiver], faults=plan)
    engine.run()
    assert got == [0, 1, 2, 3, 4, 5]
    assert net.stats.faults_reordered > 0


def test_retransmission_charges_simulated_time():
    """A lossy run must be slower in simulated time, not just noisier."""
    def sender(proc, eps):
        eps[0].send(1, "data", payload=1)

    def receiver(proc, eps):
        eps[1].recv(kind="data")

    times = {}
    for name, plan in [("clean", None),
                       ("lossy", FaultPlan(links={
                           (0, 1): LinkFaults(drop=0.9)}, seed=3))]:
        engine, net, _ = build(2, [sender, receiver], faults=plan,
                               transport=TransportConfig(rto_us=400.0))
        engine.run()
        times[name] = engine.now
    assert times["lossy"] > times["clean"]


# ---------------------------------------------------------------------------
# recv(timeout=...) and ReceiveTimeout.
# ---------------------------------------------------------------------------

def test_recv_timeout_raises_receive_timeout():
    caught = {}

    def waiter(proc, eps):
        try:
            eps[0].recv(kind="never", timeout=500.0)
        except ReceiveTimeout as exc:
            caught["text"] = str(exc)
            caught["at"] = proc.engine.now

    engine, _, _ = build(1, [waiter])
    engine.run()
    assert "timed out after 500us" in caught["text"]
    assert "kind='never'" in caught["text"]
    assert caught["at"] == pytest.approx(500.0)


def test_recv_timeout_not_triggered_when_message_arrives_first():
    got = {}

    def sender(proc, eps):
        eps[0].send(1, "data", payload="ok")

    def receiver(proc, eps):
        got["payload"] = eps[1].recv(kind="data", timeout=10000.0).payload

    engine, _, _ = build(2, [sender, receiver])
    engine.run()
    assert got["payload"] == "ok"


def test_recv_negative_timeout_rejected():
    def waiter(proc, eps):
        eps[0].recv(kind="x", timeout=-1.0)

    engine, _, _ = build(1, [waiter])
    with pytest.raises(SimulationError):
        engine.run()


# ---------------------------------------------------------------------------
# Deadlock diagnostics.
# ---------------------------------------------------------------------------

def test_deadlock_report_names_waiters_and_mailbox_contents():
    def stuck(proc, eps):
        eps[0].recv(kind="ghost", src=1, tag=7)

    def misdirected(proc, eps):
        # Sends the wrong kind, then exits: P0 waits forever.
        eps[1].send(0, "wrong_kind", tag=7)

    engine, _, _ = build(2, [stuck, misdirected])
    with pytest.raises(SimulationDeadlock) as ei:
        engine.run()
    text = str(ei.value)
    assert "1 of 2 processes are blocked" in text
    assert "recv(kind='ghost', src=1, tag=7)" in text
    assert "undelivered traffic" in text
    assert "wrong_kind<-P1" in text


def test_deadlock_report_when_nothing_was_sent():
    def stuck(proc, eps):
        eps[0].recv(kind="ghost")

    engine, _, _ = build(1, [stuck])
    with pytest.raises(SimulationDeadlock) as ei:
        engine.run()
    assert "never sent" in str(ei.value)


def test_deadlock_report_includes_unacked_transport_frames():
    def sender(proc, eps):
        eps[0].send(1, "data", payload=1)
        eps[0].recv(kind="reply")   # never comes

    def receiver(proc, eps):
        eps[1].recv(kind="data")

    # Infinite patience: no TransportError, but the data frame to a
    # dead link stays unacked -> the engine deadlocks and the report
    # must show the stuck frame.
    plan = FaultPlan(links={(0, 1): LinkFaults(drop=1.0)})
    tp = TransportConfig(rto_us=50.0, max_retries=0)
    engine, _, _ = build(2, [sender, receiver], faults=plan, transport=tp)
    with pytest.raises((SimulationDeadlock, SimulationError)) as ei:
        engine.run()
    # With max_retries=0 the first expiry trips the budget instead;
    # accept either diagnostic as long as it names the channel.
    assert "P0->P1" in str(ei.value)
