"""Unit tests for the discrete-event engine."""

import pytest

from repro.errors import SimulationDeadlock, SimulationError
from repro.sim import Engine, ProcessState


def test_single_process_advances_clock():
    engine = Engine()
    times = []

    def main(proc):
        proc.advance(10.0)
        times.append(engine.now)
        proc.advance(5.5)
        times.append(engine.now)

    engine.add_process("p0", main)
    engine.run()
    assert times == [10.0, 15.5]
    assert engine.now == 15.5


def test_processes_run_concurrently_in_virtual_time():
    engine = Engine()
    log = []

    def worker(delay):
        def main(proc):
            proc.advance(delay)
            log.append((engine.now, proc.name))
        return main

    engine.add_process("a", worker(30.0))
    engine.add_process("b", worker(10.0))
    engine.add_process("c", worker(20.0))
    engine.run()
    assert log == [(10.0, "b"), (20.0, "c"), (30.0, "a")]
    assert engine.now == 30.0


def test_zero_advance_does_not_block():
    engine = Engine()

    def main(proc):
        proc.advance(0.0)
        proc.advance(0.0)

    engine.add_process("p0", main)
    engine.run()
    assert engine.now == 0.0


def test_negative_advance_rejected():
    engine = Engine()
    caught = []

    def main(proc):
        try:
            proc.advance(-1.0)
        except SimulationError as exc:
            caught.append(exc)

    engine.add_process("p0", main)
    engine.run()
    assert len(caught) == 1


def test_wait_wake_roundtrip():
    engine = Engine()
    log = []

    waiter_proc = {}

    def waiter(proc):
        waiter_proc["p"] = proc
        proc.wait()
        log.append(("woke", engine.now))

    def waker(proc):
        proc.advance(42.0)
        waiter_proc["p"].wake()

    engine.add_process("waiter", waiter)
    engine.add_process("waker", waker)
    engine.run()
    assert log == [("woke", 42.0)]


def test_wake_before_wait_is_remembered():
    engine = Engine()
    log = []
    procs = {}

    def target(proc):
        procs["t"] = proc
        proc.advance(20.0)   # wake arrives while advancing
        proc.wait()          # must not block forever
        log.append(engine.now)

    def poker(proc):
        proc.advance(5.0)
        procs["t"].wake()

    engine.add_process("target", target)
    engine.add_process("poker", poker)
    engine.run()
    assert log == [20.0]


def test_steal_cpu_postpones_advance():
    engine = Engine()
    log = []
    procs = {}

    def victim(proc):
        procs["v"] = proc
        proc.advance(100.0)
        log.append(engine.now)

    def thief(proc):
        proc.advance(10.0)
        procs["v"].steal_cpu(25.0)

    engine.add_process("victim", victim)
    engine.add_process("thief", thief)
    engine.run()
    assert log == [125.0]


def test_steal_cpu_delays_wake_from_wait():
    engine = Engine()
    log = []
    procs = {}

    def victim(proc):
        procs["v"] = proc
        proc.wait()
        log.append(engine.now)

    def thief(proc):
        proc.advance(10.0)
        procs["v"].steal_cpu(30.0)   # busy until 40
        procs["v"].wake()            # resumes at 40, not 10
    engine.add_process("victim", victim)
    engine.add_process("thief", thief)
    engine.run()
    assert log == [40.0]


def test_deadlock_detection():
    engine = Engine()

    def main(proc):
        proc.wait()

    engine.add_process("stuck", main)
    with pytest.raises(SimulationDeadlock):
        engine.run()


def test_process_exception_propagates():
    engine = Engine()

    def main(proc):
        proc.advance(1.0)
        raise ValueError("boom")

    engine.add_process("bad", main)
    with pytest.raises(SimulationError) as exc_info:
        engine.run()
    assert isinstance(exc_info.value.__cause__, ValueError)


def test_call_after_runs_on_engine_thread():
    engine = Engine()
    log = []

    def main(proc):
        proc.advance(10.0)

    engine.add_process("p0", main)
    engine.call_after(5.0, lambda: log.append(engine.now))
    engine.run()
    assert log == [5.0]


def test_result_captured():
    engine = Engine()

    def main(proc):
        proc.advance(1.0)
        return "done"

    proc = engine.add_process("p0", main)
    engine.run()
    assert proc.result == "done"
    assert proc.state is ProcessState.DONE


def test_deterministic_ordering_same_time():
    """Same-time completions run in a deterministic (repeatable) order."""

    def run_once():
        engine = Engine()
        order = []

        def worker(name):
            def main(proc):
                proc.advance(10.0)
                order.append((name, engine.now))
            return main

        for name in ("a", "b", "c", "d"):
            engine.add_process(name, worker(name))
        engine.run()
        return order

    first = run_once()
    second = run_once()
    assert first == second
    assert {n for n, _ in first} == {"a", "b", "c", "d"}
    assert all(t == 10.0 for _, t in first)
