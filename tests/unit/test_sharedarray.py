"""Unit tests for the application-facing SharedArray access layer."""

import numpy as np
import pytest

from repro.errors import LayoutError
from repro.memory import Section, SharedLayout
from repro.tm.system import TmSystem


def run(main, arrays=(("x", (16, 8)),), nprocs=2):
    layout = SharedLayout(page_size=256)
    for name, shape in arrays:
        layout.add_array(name, shape)
    system = TmSystem(nprocs=nprocs, layout=layout)
    return system.run(main)


def test_getitem_setitem_scalar():
    def main(node):
        x = node.array("x")
        if node.pid == 0:
            x[3, 2] = 42.0
        node.barrier()
        return x[3, 2]

    res = run(main)
    assert res.returns == [42.0, 42.0]


def test_slice_read_write():
    def main(node):
        x = node.array("x")
        if node.pid == 0:
            x[0:16, 1] = np.arange(16.0)
        node.barrier()
        return float(np.sum(x[4:8, 1]))

    res = run(main)
    assert res.returns == [4.0 + 5 + 6 + 7] * 2


def test_negative_index():
    def main(node):
        x = node.array("x")
        if node.pid == 0:
            x[-1, -1] = 9.0
        node.barrier()
        return x[15, 7]

    res = run(main)
    assert res.returns == [9.0, 9.0]


def test_strided_slice():
    def main(node):
        x = node.array("x")
        if node.pid == 0:
            x[0:16:4, 0] = 1.0
        node.barrier()
        return float(np.sum(x[0:16, 0]))

    res = run(main)
    assert res.returns == [4.0, 4.0]


def test_wrong_rank_raises():
    def main(node):
        x = node.array("x")
        try:
            x[3]
        except LayoutError:
            return "raised"
        return "no"

    res = run(main)
    assert res.returns == ["raised"] * 2


def test_rmw():
    def main(node):
        x = node.array("x")
        sec = Section.of("x", (0, 3), (0, 0))
        if node.pid == 0:
            x.write(sec, 5.0)
        node.barrier()
        if node.pid == 1:
            node.lock_acquire(0)
            x.rmw(sec, lambda v: np.add(v, 1.0, out=v))
            node.lock_release(0)
        node.barrier()
        return float(x[0, 0])

    res = run(main)
    assert res.returns == [6.0, 6.0]


def test_write_view_does_not_fetch():
    """write_view must not trigger read faults."""
    def main(node):
        x = node.array("x")
        if node.pid == 0:
            x[0:16, 0] = 1.0
        node.barrier()
        if node.pid == 1:
            view = x.write_view(Section.of("x", (0, 15), (0, 0)))
            view[...] = 2.0
        node.barrier()
        return (float(x[0, 0]), node.stats.read_faults)

    res = run(main)
    val, _ = res.returns[0]
    assert val == 2.0
    _, p1_read_faults = res.returns[1]
    assert p1_read_faults == 0


def test_shape_and_dtype():
    def main(node):
        x = node.array("x")
        return (x.shape, str(x.dtype))

    res = run(main)
    assert res.returns[0] == ((16, 8), "float64")
