"""Per-application analysis checks for the apps not covered elsewhere."""

from repro.apps import get_app
from repro.compiler import analyze_program
from repro.lang.nodes import Barrier, Loop, ProcCall


def barriers_of(prog):
    out = []

    def walk(stmts):
        for s in stmts:
            if isinstance(s, Barrier):
                out.append(s)
            if isinstance(s, Loop):
                walk(s.body)
            if isinstance(s, ProcCall):
                walk(s.body)

    walk(prog.body)
    return out


class TestFftAnalysis:
    def test_transpose_region_reads_rows_of_x(self):
        prog = get_app("fft3d").program("tiny", 4)
        res = analyze_program(prog)
        b1 = next(b for b in barriers_of(prog) if b.label == "B1")
        region = res.region_of(b1)
        xs = region.summaries[("x", "")]
        assert xs.read and not xs.unknown
        (r,) = xs.read_parts
        # dim0 is the partitioned row range; dims 1 and 2 full.
        d1 = r.dims[1]
        assert d1[0].is_const and d1[0].const == 0
        assert d1[1].is_const and d1[1].const == 15

    def test_y_written_whole_slab_exactly(self):
        prog = get_app("fft3d").program("tiny", 4)
        res = analyze_program(prog)
        b1 = next(b for b in barriers_of(prog) if b.label == "B1")
        region = res.region_of(b1)
        ys = region.summaries[("y", "")]
        assert ys.write
        assert all(w.exact for w in ys.write_parts)


class TestShallowAnalysis:
    def test_proc_call_regions_exist(self):
        prog = get_app("shallow").program("tiny", 4)
        res = analyze_program(prog)
        calls = []

        def walk(stmts):
            for s in stmts:
                if isinstance(s, ProcCall):
                    calls.append(s)
                if isinstance(s, Loop):
                    walk(s.body)
                if isinstance(s, ProcCall):
                    walk(s.body)

        walk(prog.body)
        assert {c.name for c in calls} == {"calc_fluxes", "calc_new",
                                           "time_smooth"}
        # Phase 1's call region writes the four flux arrays exactly.
        calc1 = next(c for c in calls if c.name == "calc_fluxes")
        region = res.region_of(calc1)
        for arr in ("cu", "cv", "z", "h"):
            summ = region.summaries[(arr, "")]
            assert summ.write and not summ.unknown
            (w,) = summ.write_parts
            assert w.exact
            # Full columns: the stencil rows + boundary rows union.
            assert w.dims[0][0].const == 0
            assert w.dims[0][1].const == 47

    def test_regions_stop_at_call_boundaries(self):
        prog = get_app("shallow").program("tiny", 4)
        res = analyze_program(prog)
        b1 = next(b for b in barriers_of(prog) if b.label == "B1")
        region = res.region_of(b1)
        # Barrier(1) is followed immediately by the calc_new call: the
        # region ends there and contains no array accesses of its own.
        assert not any(s.write or s.read
                       for s in region.summary_list())
        assert any(isinstance(f, ProcCall) for f in region.succ_fetches)


class TestMgsAnalysis:
    def test_curcol_write_is_exact_and_contiguous(self):
        app = get_app("mgs")
        prog = app.program("tiny", 4)
        res = analyze_program(prog)
        b0 = next(b for b in barriers_of(prog) if b.label == "B0")
        region = res.region_of(b0)
        # Owner-gated: find the curcol summary whatever its owner repr.
        gated = [s for (arr, _), s in region.summaries.items()
                 if arr == "curcol"]
        assert gated
        (w,) = gated[0].write_parts
        assert w.exact and w.is_contiguous((48,))

    def test_update_sections_strided(self):
        prog = get_app("mgs").program("tiny", 4)
        res = analyze_program(prog)
        b1 = next(b for b in barriers_of(prog) if b.label == "B1")
        region = res.region_of(b1)
        a = region.summaries[("a", "")]
        assert a.write
        (w,) = a.write_parts
        assert w.dims[1][2] == 4   # cyclic stride = nprocs
        assert not w.is_contiguous((48, 48))

