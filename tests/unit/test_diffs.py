"""Unit + property tests for the twin/diff machinery."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tm.diffs import (Diff, apply_diff, diff_payload_bytes,
                            full_page_diff, make_diff)

PAGE = 128


@st.composite
def twin_and_writes(draw):
    twin = np.array(draw(st.lists(
        st.integers(0, 255), min_size=PAGE, max_size=PAGE)),
        dtype=np.uint8)
    current = twin.copy()
    nwrites = draw(st.integers(0, 5))
    for _ in range(nwrites):
        off = draw(st.integers(0, PAGE - 1))
        length = draw(st.integers(1, PAGE - off))
        val = draw(st.integers(0, 255))
        current[off:off + length] = val
    return twin, current


@given(twin_and_writes())
@settings(max_examples=200)
def test_make_apply_roundtrip(case):
    twin, current = case
    diff = make_diff(3, 0, 1, twin, current)
    target = twin.copy()
    apply_diff(diff, target)
    np.testing.assert_array_equal(target, current)


@given(twin_and_writes())
@settings(max_examples=100)
def test_diff_covers_exactly_changed_bytes(case):
    twin, current = case
    diff = make_diff(3, 0, 1, twin, current)
    changed = int((twin != current).sum())
    assert diff.payload_bytes == changed
    # Runs are maximal: no two adjacent runs touch.
    offs = sorted((off, len(data)) for off, data in diff.runs)
    for (o1, l1), (o2, _) in zip(offs, offs[1:]):
        assert o1 + l1 < o2


@given(twin_and_writes(), twin_and_writes())
@settings(max_examples=100)
def test_concurrent_disjoint_diffs_merge(case_a, case_b):
    """Multiple-writer: diffs from disjoint writes commute."""
    twin, cur_a = case_a
    _, cur_b_raw = case_b
    # Make b's writes disjoint from a's by construction: apply b's
    # changes only where a left the twin untouched.
    mask_a = twin != cur_a
    cur_b = twin.copy()
    cur_b[~mask_a] = cur_b_raw[~mask_a]
    da = make_diff(0, 0, 1, twin, cur_a)
    db = make_diff(0, 1, 1, twin, cur_b)
    t1 = twin.copy()
    apply_diff(da, t1)
    apply_diff(db, t1)
    t2 = twin.copy()
    apply_diff(db, t2)
    apply_diff(da, t2)
    np.testing.assert_array_equal(t1, t2)
    expected = twin.copy()
    expected[mask_a] = cur_a[mask_a]
    expected[~mask_a] = cur_b[~mask_a]
    np.testing.assert_array_equal(t1, expected)


def test_empty_diff():
    twin = np.zeros(PAGE, dtype=np.uint8)
    diff = make_diff(0, 0, 1, twin, twin.copy())
    assert diff.runs == ()
    assert diff.payload_bytes == 0
    target = np.ones(PAGE, dtype=np.uint8)
    apply_diff(diff, target)
    assert target.sum() == PAGE


def test_full_page_diff():
    current = np.arange(PAGE, dtype=np.uint8)
    diff = full_page_diff(7, 2, 5, current)
    assert diff.full
    assert diff.payload_bytes == PAGE
    target = np.zeros(PAGE, dtype=np.uint8)
    apply_diff(diff, target)
    np.testing.assert_array_equal(target, current)


def test_wire_bytes_accounting():
    twin = np.zeros(PAGE, dtype=np.uint8)
    current = twin.copy()
    current[10:20] = 1
    current[50:55] = 2
    diff = make_diff(0, 0, 1, twin, current)
    assert len(diff.runs) == 2
    assert diff.payload_bytes == 15
    assert diff.wire_bytes == 12 + 2 * 8 + 15
    assert diff_payload_bytes([diff, diff]) == 2 * diff.wire_bytes


def test_diff_is_hashable_and_cached_sizes():
    twin = np.zeros(PAGE, dtype=np.uint8)
    current = twin.copy()
    current[0] = 9
    d = make_diff(0, 0, 1, twin, current)
    assert isinstance(hash(d), int)
    assert d.payload_bytes == 1
