"""Unit + property tests for concrete regular sections."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SectionError
from repro.memory import Section, ap_intersect


def ap_points(lo, hi, step):
    return set(range(lo, hi + 1, step))


dims_st = st.tuples(
    st.integers(min_value=0, max_value=40),
    st.integers(min_value=0, max_value=40),
    st.integers(min_value=1, max_value=7),
).map(lambda t: (min(t[0], t[1]), max(t[0], t[1]), t[2]))


@given(dims_st, dims_st)
@settings(max_examples=300)
def test_ap_intersect_matches_bruteforce(d1, d2):
    got = ap_intersect(*d1, *d2)
    expected = ap_points(*d1) & ap_points(*d2)
    if got is None:
        assert expected == set()
    else:
        assert ap_points(*got) == expected


@given(st.lists(dims_st, min_size=1, max_size=3),
       st.lists(dims_st, min_size=1, max_size=3))
@settings(max_examples=200)
def test_section_intersect_matches_bruteforce(dims_a, dims_b):
    if len(dims_a) != len(dims_b):
        dims_b = (dims_b * 3)[:len(dims_a)]
    a = Section("x", tuple(dims_a))
    b = Section("x", tuple(dims_b))
    got = a.intersect(b)
    expected = set(a.iter_points()) & set(b.iter_points())
    if got is None:
        assert expected == set()
    else:
        assert set(got.iter_points()) == expected


@given(st.lists(dims_st, min_size=1, max_size=2),
       st.lists(dims_st, min_size=1, max_size=2))
@settings(max_examples=200)
def test_hull_covers_both(dims_a, dims_b):
    if len(dims_a) != len(dims_b):
        dims_b = (dims_b * 2)[:len(dims_a)]
    a = Section("x", tuple(dims_a))
    b = Section("x", tuple(dims_b))
    hull = a.hull(b)
    pts = set(hull.iter_points())
    assert set(a.iter_points()) <= pts
    assert set(b.iter_points()) <= pts


@given(st.lists(dims_st, min_size=1, max_size=2))
@settings(max_examples=100)
def test_self_operations(dims):
    a = Section("x", tuple(dims))
    assert a.intersect(a) is not None
    assert set(a.intersect(a).iter_points()) == set(a.iter_points())
    assert a.contains(a)
    assert a.union_exact(a) is not None


def test_of_and_whole_and_point():
    s = Section.of("a", (0, 9), (2, 5, 3))
    assert s.dims == ((0, 9, 1), (2, 5, 3))
    assert Section.whole("a", (4, 3)).dims == ((0, 3, 1), (0, 2, 1))
    assert Section.point("a", (3, 7)).npoints() == 1


def test_npoints():
    assert Section.of("a", (0, 9)).npoints() == 10
    assert Section.of("a", (0, 9, 3)).npoints() == 4
    assert Section.of("a", (0, 9), (0, 4)).npoints() == 50


def test_contains_point():
    s = Section.of("a", (2, 10, 2))
    assert s.contains_point((4,))
    assert not s.contains_point((5,))
    assert not s.contains_point((12,))


def test_intersect_different_arrays_is_none():
    a = Section.of("a", (0, 9))
    b = Section.of("b", (0, 9))
    assert a.intersect(b) is None


def test_union_exact_adjacent():
    a = Section.of("a", (0, 4))
    b = Section.of("a", (5, 9))
    u = a.union_exact(b)
    assert u is not None and set(u.iter_points()) == {(i,) for i in range(10)}


def test_union_exact_disjoint_gap_is_none():
    a = Section.of("a", (0, 3))
    b = Section.of("a", (6, 9))
    assert a.union_exact(b) is None


def test_contains_strided():
    outer = Section.of("a", (0, 20, 2))
    assert outer.contains(Section.of("a", (4, 12, 4)))
    assert not outer.contains(Section.of("a", (1, 9, 2)))   # misaligned
    assert not outer.contains(Section.of("a", (0, 9, 3)))   # stride mismatch


def test_bad_step_rejected():
    with pytest.raises(SectionError):
        Section("a", ((0, 5, 0),))


def test_empty_section():
    s = Section("a", ((5, 3, 1),))
    assert s.empty
    assert s.npoints() == 0
    assert list(s.iter_points()) == []
