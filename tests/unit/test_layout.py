"""Unit + property tests for the shared layout and memory images."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import LayoutError
from repro.memory import MemoryImage, Section, SharedLayout


def test_arrays_are_page_aligned():
    layout = SharedLayout(page_size=256)
    a = layout.add_array("a", (10, 10))
    b = layout.add_array("b", (3,), dtype=np.int32)
    assert a.base % 256 == 0
    assert b.base % 256 == 0
    assert b.base >= a.base + a.nbytes
    assert layout.total_bytes % 256 == 0


def test_duplicate_and_bad_shapes_rejected():
    layout = SharedLayout()
    layout.add_array("a", (4,))
    with pytest.raises(LayoutError):
        layout.add_array("a", (4,))
    with pytest.raises(LayoutError):
        layout.add_array("b", (0,))
    with pytest.raises(LayoutError):
        layout.info("nope")


def test_element_offset_fortran_order():
    layout = SharedLayout(page_size=256)
    info = layout.add_array("a", (8, 4))  # column-major
    assert layout.element_offset("a", (0, 0)) == info.base
    assert layout.element_offset("a", (1, 0)) == info.base + 8
    assert layout.element_offset("a", (0, 1)) == info.base + 8 * 8


def test_column_is_contiguous():
    """A full column of a column-major array is one byte range."""
    layout = SharedLayout(page_size=256)
    layout.add_array("a", (32, 8))
    ranges = layout.byte_ranges(Section.of("a", (0, 31), (2, 2)))
    assert len(ranges) == 1
    start, stop = ranges[0]
    assert stop - start == 32 * 8


def test_row_is_scattered():
    layout = SharedLayout(page_size=256)
    layout.add_array("a", (32, 8))
    ranges = layout.byte_ranges(Section.of("a", (3, 3), (0, 7)))
    assert len(ranges) == 8


def test_full_array_is_one_range():
    layout = SharedLayout(page_size=256)
    info = layout.add_array("a", (16, 16))
    ranges = layout.byte_ranges(Section.whole("a", (16, 16)))
    assert ranges == [(info.base, info.base + info.nbytes)]


def test_adjacent_columns_merge():
    layout = SharedLayout(page_size=256)
    layout.add_array("a", (16, 16))
    ranges = layout.byte_ranges(Section.of("a", (0, 15), (2, 5)))
    assert len(ranges) == 1


@st.composite
def small_sections(draw):
    shape = draw(st.tuples(st.integers(2, 12), st.integers(2, 10)))
    dims = []
    for extent in shape:
        lo = draw(st.integers(0, extent - 1))
        hi = draw(st.integers(lo, extent - 1))
        step = draw(st.integers(1, 3))
        dims.append((lo, hi, step))
    return shape, Section("a", tuple(dims))


@given(small_sections())
@settings(max_examples=150)
def test_byte_ranges_cover_exactly_the_section(case):
    shape, section = case
    layout = SharedLayout(page_size=64)
    info = layout.add_array("a", shape)
    covered = set()
    for start, stop in layout.byte_ranges(section):
        covered.update(range(start, stop))
    expected = set()
    for point in section.iter_points():
        off = layout.element_offset("a", point)
        expected.update(range(off, off + info.itemsize))
    assert covered == expected


@given(small_sections())
@settings(max_examples=100)
def test_pages_of_matches_byte_ranges(case):
    shape, section = case
    layout = SharedLayout(page_size=64)
    layout.add_array("a", shape)
    pages = set(layout.pages_of(section))
    expected = set()
    for start, stop in layout.byte_ranges(section):
        expected.update(range(start // 64, (stop - 1) // 64 + 1))
    assert pages == expected
    full = layout.pages_fully_covered(section)
    assert full <= pages


def test_pages_fully_covered():
    layout = SharedLayout(page_size=64)
    layout.add_array("a", (64,))   # 8 pages of 8 float64 each
    # Elements 4..19 cover bytes 32..160: page 1 fully, pages 0 and 2 partly.
    full = layout.pages_fully_covered(Section.of("a", (4, 19)))
    assert full == {1}
    assert layout.pages_of(Section.of("a", (4, 19))) == [0, 1, 2]


def test_memory_image_views_alias_buffer():
    layout = SharedLayout(page_size=256)
    layout.add_array("a", (8, 4))
    img = MemoryImage(layout)
    view = img.view("a")
    view[3, 2] = 7.5
    again = img.view("a")
    assert again[3, 2] == 7.5
    # Fortran order: element (3, 2) is at elem index 3 + 2*8 = 19.
    info = layout.info("a")
    flat = np.ndarray((32,), dtype=np.float64,
                      buffer=img.buf[info.base:info.base + info.nbytes].data)
    assert flat[19] == 7.5


def test_section_view_strided_write():
    layout = SharedLayout(page_size=256)
    layout.add_array("a", (10, 10))
    img = MemoryImage(layout)
    sec = Section.of("a", (0, 9), (1, 7, 2))
    img.section_view(sec)[:] = 3.0
    arr = img.view("a")
    assert arr[:, 1::2][:, :4].sum() == 3.0 * 40
    assert arr.sum() == 3.0 * 40


def test_read_write_bytes_roundtrip():
    layout = SharedLayout(page_size=64)
    layout.add_array("a", (16,))
    img = MemoryImage(layout)
    img.write_bytes(8, b"\x01\x02\x03\x04")
    assert img.read_bytes(8, 12) == b"\x01\x02\x03\x04"


def test_section_nbytes():
    layout = SharedLayout()
    layout.add_array("a", (10, 10))
    assert layout.section_nbytes(Section.of("a", (0, 9), (0, 0))) == 80
