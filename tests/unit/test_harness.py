"""Unit tests for harness plumbing: modes, reports, registry, runner."""

import numpy as np
import pytest

from repro.apps import all_apps, get_app
from repro.compiler import OptConfig
from repro.harness.modes import (OPT_LEVELS, applicable_levels,
                                 sync_fetch_variant)
from repro.harness.report import (render_figure5, render_figure6,
                                  render_figure7, render_table,
                                  render_table1, render_table2)
from repro.harness.runner import layout_for, run_dsm, run_seq


def test_registry_has_all_six_apps():
    apps = all_apps()
    assert set(apps) == {"jacobi", "fft3d", "is", "shallow", "gauss",
                         "mgs"}
    for app in apps.values():
        assert {"large", "small", "bench", "tiny"} <= set(app.datasets)
        assert app.datasets["large"].paper_uniproc_secs is not None
        assert app.datasets["small"].paper_uniproc_secs is not None


def test_get_app_unknown_raises():
    with pytest.raises(KeyError):
        get_app("nonesuch")


def test_opt_levels_are_cumulative():
    assert OPT_LEVELS["base"] is None
    assert not OPT_LEVELS["aggr"].consistency_elimination
    assert OPT_LEVELS["aggr+cons"].consistency_elimination
    assert OPT_LEVELS["merge"].sync_data_merge
    assert OPT_LEVELS["push"].push


def test_applicable_levels_match_paper():
    apps = all_apps()
    assert "merge" not in applicable_levels(apps["shallow"])
    assert "push" not in applicable_levels(apps["shallow"])
    for name in ("is", "gauss", "mgs"):
        assert "push" not in applicable_levels(apps[name])
    assert set(applicable_levels(apps["jacobi"])) == set(OPT_LEVELS)


def test_sync_fetch_variant():
    opt = sync_fetch_variant(OPT_LEVELS["aggr+cons"])
    assert not opt.asynchronous
    assert opt.consistency_elimination


def test_layout_for_skips_private_arrays():
    app = get_app("jacobi")
    layout = layout_for(app.program("tiny", 1), page_size=256)
    assert "b" in layout.arrays
    assert "a" not in layout.arrays


def test_render_table_handles_none_and_strings():
    text = render_table("T", ["a", "b"], [["x", None], ["y", 1.5]])
    assert "n/a" in text
    assert "1.50" in text


def test_render_table_aligns_wide_floats():
    # Floats wider than _fmt's 7-char default (large simulated times)
    # must widen their column, not overflow it.
    text = render_table("T", ["app", "t"],
                        [["jacobi", 12345678901.25], ["is", 1.5]])
    lines = text.splitlines()
    header, rule, row1, row2 = lines[2:6]
    assert len(header) == len(rule) == len(row1) == len(row2)
    assert "12345678901.25" in row1
    # Columns stay aligned: every cell right-justified at one width.
    assert row2.endswith("1.50")
    assert row1.index("12345678901.25") + len("12345678901.25") \
        == len(row1)


def test_render_table_mixed_width_columns():
    text = render_table("T", ["k", "v"],
                        [["tiny", 0.5], ["huge", 98765432.109],
                         ["none", None], ["int", 1234567890]])
    lines = text.splitlines()
    assert len({len(l) for l in lines[2:8]}) == 1


def test_renderers_accept_driver_shapes():
    t1 = render_table1([{"app": "jacobi", "dataset": "bench",
                         "params": {"M": 2}, "paper_secs": None,
                         "simulated_secs": 1.0}])
    assert "jacobi" in t1
    t2 = render_table2([{"app": "is", "best_level": "merge",
                         "segv_pct": 99.0, "msg_pct": 50.0,
                         "data_pct": -10.0}])
    assert "merge" in t2
    f5 = render_figure5([{"app": "is", "Tmk": 1.0, "Opt-Tmk": 2.0,
                          "XHPF": None, "PVMe": 3.0}])
    assert "n/a" in f5
    f6 = render_figure6([{"app": "is", "base": 1.0, "aggr": 1.1,
                          "aggr+cons": 1.2, "merge": None, "push": None,
                          "XHPF": None, "PVMe": 2.0}])
    assert "is" in f6
    f7 = render_figure7([{"app": "is", "Tmk": 1.0, "Sync": 1.5,
                          "Async": 1.6}])
    assert "Async" in f7


def test_run_dsm_without_snapshot_returns_no_arrays():
    app = get_app("jacobi")
    res = run_dsm(app.program("tiny", 2), nprocs=2, opt=None,
                  page_size=256, snapshot=False)
    assert res.arrays == {}
    assert res.time > 0


def test_opt_config_is_hashable_and_frozen():
    opt = OptConfig(name="x")
    with pytest.raises(Exception):
        opt.push = True
    assert isinstance(hash(opt), int)


def test_cli_entry_point():
    from repro.__main__ import main
    assert main(["table1", "--dataset", "tiny"]) == 0
