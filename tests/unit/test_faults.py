"""Unit tests for fault plans and their deterministic injection."""

import pytest

from repro.errors import FaultPlanError
from repro.faults import (FaultInjector, FaultPlan, LinkFaults, NodeOutage,
                          Partition)


# ---------------------------------------------------------------------------
# Plan validation: malformed plans fail loudly at construction.
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("kw", [
    {"drop": -0.1}, {"drop": 1.5}, {"dup": 2.0}, {"reorder": -1.0},
    {"delay": 1.01}, {"delay_mean_us": -5.0},
])
def test_link_faults_validation(kw):
    with pytest.raises(FaultPlanError):
        LinkFaults(**kw)


def test_partition_window_must_be_nonempty():
    with pytest.raises(FaultPlanError):
        Partition(t0=100.0, t1=100.0, groups=((0,), (1,)))
    with pytest.raises(FaultPlanError):
        Partition(t0=200.0, t1=100.0, groups=((0,), (1,)))


def test_outage_window_must_be_nonempty():
    with pytest.raises(FaultPlanError):
        NodeOutage(pid=0, t0=50.0, t1=50.0)


def test_quiet_link_detection():
    assert LinkFaults().quiet
    assert not LinkFaults(drop=0.1).quiet
    # A pure delay-magnitude change with no probability is still quiet.
    assert LinkFaults(delay_mean_us=999.0).quiet


# ---------------------------------------------------------------------------
# Plan semantics.
# ---------------------------------------------------------------------------

def test_per_link_override_falls_back_to_default():
    hot = LinkFaults(drop=0.5)
    plan = FaultPlan(default=LinkFaults(drop=0.01), links={(0, 1): hot})
    assert plan.link(0, 1) is hot
    assert plan.link(1, 0).drop == 0.01     # overrides are directional


def test_partition_separates_only_across_groups_inside_window():
    part = Partition(t0=100.0, t1=200.0, groups=((0, 1), (2, 3)))
    assert part.separates(0, 2, 150.0)
    assert part.separates(3, 1, 100.0)      # window start inclusive
    assert not part.separates(0, 1, 150.0)  # same group
    assert not part.separates(0, 2, 99.9)   # before window
    assert not part.separates(0, 2, 200.0)  # window end exclusive
    # A pid in no group is unrestricted.
    assert not part.separates(0, 7, 150.0)


def test_outage_covers_half_open_window():
    out = NodeOutage(pid=2, t0=10.0, t1=20.0)
    assert out.covers(10.0)
    assert out.covers(19.9)
    assert not out.covers(20.0)
    assert not out.covers(9.9)


def test_plan_describe_and_as_dict_round_trip():
    plan = FaultPlan.uniform(seed=42, drop=0.1, dup=0.05,
                             partitions=(Partition(0.0, 10.0,
                                                   ((0,), (1,))),),
                             outages=(NodeOutage(1, 5.0, 6.0),))
    text = plan.describe()
    assert "seed=42" in text and "drop=0.1" in text
    assert "1 partitions" in text and "1 node outages" in text
    d = plan.as_dict()
    assert d["seed"] == 42
    assert d["default"]["drop"] == 0.1
    assert d["partitions"][0]["groups"] == [[0], [1]]
    assert d["outages"][0]["pid"] == 1


# ---------------------------------------------------------------------------
# Injector: deterministic, seed-driven fabric decisions.
# ---------------------------------------------------------------------------

def _schedule(plan, n=200):
    inj = FaultInjector(plan, nprocs=4)
    return [tuple(inj.plan_copies(0, 1, "data", depart=float(i)))
            for i in range(n)]


def test_same_seed_same_schedule():
    plan = FaultPlan.uniform(seed=7, drop=0.2, dup=0.2, reorder=0.2)
    assert _schedule(plan) == _schedule(plan)


def test_different_seed_different_schedule():
    base = FaultPlan.uniform(seed=7, drop=0.2, dup=0.2, reorder=0.2)
    assert _schedule(base) != _schedule(base.with_seed(8))


def test_quiet_link_is_pass_through_and_burns_no_randomness():
    plan = FaultPlan(default=LinkFaults(),
                     links={(0, 1): LinkFaults(drop=0.5)})
    inj = FaultInjector(plan, nprocs=4)
    # Quiet link (1, 0): exactly one copy, zero extra delay, and the RNG
    # stream is untouched, so faulty-link decisions stay aligned.
    state = inj.rng.getstate()
    assert inj.plan_copies(1, 0, "data", 0.0) == [0.0]
    assert inj.rng.getstate() == state


def test_drop_one_means_everything_lost():
    plan = FaultPlan.uniform(seed=1, drop=1.0)
    inj = FaultInjector(plan, nprocs=2)
    assert all(inj.plan_copies(0, 1, "data", float(i)) == []
               for i in range(20))


def test_dup_one_means_two_copies_second_later():
    plan = FaultPlan.uniform(seed=1, dup=1.0)
    inj = FaultInjector(plan, nprocs=2)
    copies = inj.plan_copies(0, 1, "data", 0.0)
    assert len(copies) == 2
    assert copies[0] == 0.0 and copies[1] > 0.0


def test_partition_drops_cross_group_frames_and_counts():
    plan = FaultPlan(partitions=(Partition(100.0, 200.0,
                                           ((0,), (1,))),))
    inj = FaultInjector(plan, nprocs=2)
    assert inj.plan_copies(0, 1, "data", 150.0) == []
    assert inj.plan_copies(0, 1, "data", 250.0) == [0.0]


def test_outage_silences_sender():
    plan = FaultPlan(outages=(NodeOutage(0, 10.0, 20.0),))
    inj = FaultInjector(plan, nprocs=2)
    assert inj.plan_copies(0, 1, "data", 15.0) == []
    assert inj.plan_copies(1, 0, "data", 15.0) == [0.0]  # sender 1 is up
    assert inj.outage_at(0, 15.0) is not None
    assert inj.outage_at(0, 20.0) is None


def test_injector_mirrors_counters_into_stats():
    from repro.net.stats import NetStats
    stats = NetStats()
    plan = FaultPlan.uniform(seed=3, drop=1.0)
    inj = FaultInjector(plan, nprocs=2, stats=stats)
    inj.plan_copies(0, 1, "data", 0.0)
    inj.plan_copies(0, 1, "data", 1.0)
    assert stats.faults_dropped == 2
    assert stats.faults_injected == 2
    assert stats.transport_summary()["faults_dropped"] == 2
