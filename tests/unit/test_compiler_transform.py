"""Tests of the Section 4.2 source-to-source transformation."""

import pytest

from repro.apps.jacobi import APP as JACOBI
from repro.apps.fft3d import APP as FFT
from repro.apps.gauss import APP as GAUSS
from repro.apps.is_sort import APP as IS
from repro.apps.shallow import APP as SHALLOW
from repro.compiler import OptConfig, transform
from repro.errors import CompileError
from repro.lang.nodes import (Acquire, Barrier, Loop, ProcCall, PushStmt,
                              ValidateStmt)
from repro.rt.access import AccessType


def collect(stmts, cls, out):
    for s in stmts:
        if isinstance(s, cls):
            out.append(s)
        if isinstance(s, Loop):
            collect(s.body, cls, out)
        if isinstance(s, ProcCall):
            collect(s.body, cls, out)
    return out


FULL = OptConfig(push=True, sync_data_merge=False, name="full")
MERGE = OptConfig(push=False, sync_data_merge=True, name="merge")
AGGR_ONLY = OptConfig(consistency_elimination=False, name="aggr")


class TestJacobi:
    def test_barrier2_becomes_push(self):
        prog = transform(JACOBI.program("tiny", 4), FULL)
        pushes = collect(prog.body, PushStmt, [])
        assert len(pushes) == 1
        assert pushes[0].label == "B2"
        barriers = [b.label for b in collect(prog.body, Barrier, [])]
        assert "B2" not in barriers
        assert "B1" in barriers and "B0" in barriers

    def test_write_all_validate_after_b1(self):
        prog = transform(JACOBI.program("tiny", 4), FULL)
        validates = collect(prog.body, ValidateStmt, [])
        write_alls = [v for v in validates
                      if v.access is AccessType.WRITE_ALL]
        assert len(write_alls) >= 1
        (spec,) = write_alls[0].specs
        assert spec.array == "b"

    def test_no_consistency_elimination_without_flag(self):
        prog = transform(JACOBI.program("tiny", 4), AGGR_ONLY)
        validates = collect(prog.body, ValidateStmt, [])
        assert validates
        assert all(v.access.preserves_consistency for v in validates)

    def test_merge_moves_fetching_validates_before_sync(self):
        prog = transform(JACOBI.program("tiny", 4), MERGE)
        validates = collect(prog.body, ValidateStmt, [])
        assert any(v.w_sync for v in validates)
        # WRITE_ALL has nothing to fetch: never merged.
        assert all(not v.w_sync for v in validates
                   if v.access is AccessType.WRITE_ALL)

    def test_no_aggregation_no_validates(self):
        prog = transform(JACOBI.program("tiny", 4),
                         OptConfig(aggregation=False,
                                   consistency_elimination=False,
                                   name="off"))
        assert collect(prog.body, ValidateStmt, []) == []
        assert collect(prog.body, PushStmt, []) == []


class TestFft:
    def test_push_sites(self):
        """All three iteration barriers are replaced (B3 degenerates to a
        no-op exchange: each slab's reader is its own writer); the
        implicit exit barrier restores consistency at termination."""
        prog = transform(FFT.program("tiny", 4), FULL)
        pushes = collect(prog.body, PushStmt, [])
        assert {p.label for p in pushes} == {"B1", "B2", "B3"}
        labels = [b.label for b in collect(prog.body, Barrier, [])]
        assert labels == ["B0"]


class TestGauss:
    def test_no_push_for_cyclic_sections(self):
        prog = transform(GAUSS.program("tiny", 4), FULL)
        assert collect(prog.body, PushStmt, []) == []

    def test_strided_writes_stay_consistency_preserving(self):
        prog = transform(GAUSS.program("tiny", 4), FULL)
        validates = collect(prog.body, ValidateStmt, [])
        for v in validates:
            for spec in v.specs:
                if spec.array == "a" and not v.access.preserves_consistency:
                    # _ALL types only on contiguous column sections.
                    assert all(step == 1 for _, _, step in spec.dims)


class TestShallow:
    def test_validates_inside_procedures(self):
        prog = transform(SHALLOW.program("tiny", 4), FULL)
        procs = collect(prog.body, ProcCall, [])
        assert procs
        inner = []
        for p in procs:
            inner.extend(v for v in p.body if isinstance(v, ValidateStmt))
        assert inner, "procedure entries should receive Validates"

    def test_no_push_across_call_boundaries(self):
        prog = transform(SHALLOW.program("tiny", 4), FULL)
        assert collect(prog.body, PushStmt, []) == []


class TestIs:
    def test_read_write_all_at_lock(self):
        prog = transform(IS.program("tiny", 4), FULL)
        validates = collect(prog.body, ValidateStmt, [])
        rwall = [v for v in validates
                 if v.access is AccessType.READ_WRITE_ALL]
        assert any(spec.array == "shared_buckets"
                   for v in rwall for spec in v.specs)

    def test_no_push_for_lock_program(self):
        prog = transform(IS.program("tiny", 4), FULL)
        assert collect(prog.body, PushStmt, []) == []

    def test_rank_read_validated_despite_indirect_kernel(self):
        """Partial analysis: the unknown-free shared_buckets read still
        gets a Validate even though the kernel is indirect."""
        prog = transform(IS.program("tiny", 4), FULL)
        validates = collect(prog.body, ValidateStmt, [])
        reads = [v for v in validates if v.access is AccessType.READ]
        assert any(spec.array == "shared_buckets"
                   for v in reads for spec in v.specs)


def test_transform_rejects_already_transformed():
    prog = transform(JACOBI.program("tiny", 4), FULL)
    with pytest.raises(CompileError):
        transform(prog, FULL)


def test_transform_requires_config():
    with pytest.raises(CompileError):
        transform(JACOBI.program("tiny", 4), None)


def test_async_flag_controls_validates():
    sync = transform(JACOBI.program("tiny", 4),
                     OptConfig(asynchronous=False, name="s"))
    for v in collect(sync.body, ValidateStmt, []):
        assert not v.asynchronous
    async_ = transform(JACOBI.program("tiny", 4),
                       OptConfig(asynchronous=True, name="a"))
    fetching = [v for v in collect(async_.body, ValidateStmt, [])
                if v.access.fetches]
    assert fetching and all(v.asynchronous for v in fetching)
