"""The coherence-backend registry, home policy, and protocol plumbing."""

import pytest

from repro.errors import ReproError
from repro.harness import RunSpec, run
from repro.inspect.timeline import preferred_home
from repro.tm.coherence import (DEFAULT_PROTOCOL, CoherenceBackend,
                                get_backend, protocols)


# ----------------------------------------------------------------------
# Registry.
# ----------------------------------------------------------------------

def test_default_protocol_is_the_papers():
    assert DEFAULT_PROTOCOL == "mw-lrc"
    assert get_backend(None).name == "mw-lrc"
    assert get_backend("mw-lrc") is get_backend(None)


def test_registry_names():
    names = protocols()
    assert {"mw-lrc", "hlrc", "adaptive"} <= set(names)
    for name in names:
        cls = get_backend(name)
        assert issubclass(cls, CoherenceBackend)
        assert cls.name == name


def test_unknown_protocol_lists_choices():
    with pytest.raises(ReproError) as exc:
        get_backend("treadmarks")
    msg = str(exc.value)
    assert "treadmarks" in msg
    for name in ("mw-lrc", "hlrc", "adaptive"):
        assert name in msg


def test_runspec_rejects_unknown_protocol():
    with pytest.raises(ReproError):
        run(RunSpec(app="jacobi", mode="dsm", dataset="tiny",
                    protocol="nope"))


def test_runspec_rejects_non_dsm_protocol():
    with pytest.raises(ReproError):
        run(RunSpec(app="jacobi", mode="mp", dataset="tiny", nprocs=4,
                    protocol="hlrc"))
    # The default backend name is allowed anywhere (it's a no-op).
    out = run(RunSpec(app="jacobi", mode="seq", dataset="tiny",
                      protocol="mw-lrc"))
    assert out.time > 0


def test_recovery_is_mw_lrc_only():
    from repro.faults import FaultPlan, NodeCrash

    plan = FaultPlan(crashes=(NodeCrash(pid=1, t=100.0),))
    with pytest.raises(ReproError):
        run(RunSpec(app="jacobi", mode="dsm", dataset="tiny", nprocs=4,
                    page_size=1024, protocol="hlrc", faults=plan))


# ----------------------------------------------------------------------
# The adaptive home policy (shared with the inspector's rankings).
# ----------------------------------------------------------------------

def test_policy_no_activity_stays_put():
    assert preferred_home({}, current=0) is None


def test_policy_single_writer_flips_on_one_write():
    # First-write owner heuristic: min_activity does not gate it.
    assert preferred_home({2: (1, 0)}, current=0) == 2


def test_policy_single_writer_already_home():
    assert preferred_home({2: (5, 0)}, current=2) is None


def test_policy_multi_writer_needs_min_activity():
    act = {1: (1, 0), 2: (1, 0)}
    assert preferred_home(act, current=0, min_activity=3) is None
    assert preferred_home({1: (2, 1), 2: (1, 0)}, current=0,
                          min_activity=3) == 1


def test_policy_busiest_processor_wins():
    act = {1: (3, 1), 2: (1, 0), 3: (2, 0)}
    assert preferred_home(act, current=2) == 1


def test_policy_hysteresis_keeps_balanced_pages():
    # The candidate must strictly beat the current home's activity.
    act = {0: (2, 1), 1: (2, 1)}
    assert preferred_home(act, current=0) is None


def test_policy_ties_break_to_lowest_pid():
    act = {3: (2, 0), 1: (2, 0)}
    assert preferred_home(act, current=0) == 1


def test_policy_reader_dominated_page_migrates_to_consumer():
    # Two writers, one heavy remote consumer: the page moves to it.
    act = {0: (1, 0), 1: (1, 0), 2: (0, 4)}
    assert preferred_home(act, current=0) == 2


# ----------------------------------------------------------------------
# Backend-owned counters.
# ----------------------------------------------------------------------

def run_tiny(protocol):
    return run(RunSpec(app="jacobi", mode="dsm", dataset="tiny",
                       nprocs=4, opt="base", page_size=1024,
                       protocol=protocol))


def test_home_counters_zero_under_mw_lrc():
    out = run_tiny("mw-lrc")
    s = out.stats
    assert (s.home_flushes, s.home_applies, s.page_fetches,
            s.pages_served, s.home_migrations) == (0, 0, 0, 0, 0)
    assert s.diffs_applied > 0


def test_hlrc_homes_never_twin_their_pages():
    out = run_tiny("hlrc")
    s = out.stats
    assert s.home_flushes > 0
    assert s.home_applies > 0
    assert s.pages_served == s.page_fetches > 0
    assert s.home_migrations == 0
    # mw-lrc's diff-serving machinery stays cold.
    assert s.full_pages_served == 0


def test_adaptive_reports_migrations():
    out = run_tiny("adaptive")
    assert out.stats.home_migrations > 0
