"""MachineConfig field validation: bad cost models fail at construction."""

import pytest

from repro.errors import ReproError
from repro.machine import MachineConfig


def test_defaults_are_valid():
    MachineConfig()


@pytest.mark.parametrize("kw", [
    {"nprocs": 0}, {"nprocs": -4}, {"page_size": 0}, {"bandwidth": 0.0},
    {"bandwidth": -35.0},
])
def test_positive_fields_reject_zero_and_negative(kw):
    with pytest.raises(ReproError):
        MachineConfig(**kw)


@pytest.mark.parametrize("kw", [
    {"send_overhead": -1.0}, {"wire_latency": -0.1},
    {"interrupt_cost": -60.0}, {"prot_slope": -0.5},
    {"diff_create_per_byte": -0.008}, {"header_bytes": -32},
])
def test_cost_fields_reject_negative(kw):
    with pytest.raises(ReproError) as ei:
        MachineConfig(**kw)
    assert "simulated time run backwards" in str(ei.value)


@pytest.mark.parametrize("kw", [
    {"send_overhead": "60"}, {"nprocs": None}, {"bandwidth": True},
])
def test_non_numeric_fields_rejected(kw):
    with pytest.raises(ReproError) as ei:
        MachineConfig(**kw)
    assert "must be a number" in str(ei.value)


def test_zero_costs_are_allowed():
    # A free network is degenerate but legal (useful in unit tests).
    cfg = MachineConfig(send_overhead=0.0, wire_latency=0.0)
    assert cfg.wire_time(0) == pytest.approx(32 / 35.0)


def test_with_nprocs_revalidates():
    with pytest.raises(ReproError):
        MachineConfig().with_nprocs(0)
