"""Unit tests for symbolic regular section descriptors."""

from repro.compiler.rsd import RSD, linexpr_to_expr
from repro.lang.expr import LinExpr, Sym, linearize
from repro.lang.nodes import eval_int


def lin(expr, loop_vars=()):
    return linearize(expr, set(loop_vars))


def c(v):
    return LinExpr.constant(v)


def rsd1(lo, hi, step=1, array="a"):
    return RSD(array, ((lo, hi, step),))


def test_point_and_expand_shifted():
    i = Sym("i")
    r = RSD.point("a", (lin(i - 1, ["i"]),))
    out = r.expand("i", c(1), c(10), 1)
    (lo, hi, step), = out.dims
    assert lo.const == 0 and hi.const == 9 and step == 1
    assert out.exact


def test_expand_strided():
    i = Sym("i")
    r = RSD.point("a", (lin(2 * i, ["i"]),))
    out = r.expand("i", c(0), c(5), 1)
    assert out.dims[0][2] == 2


def test_expand_symbolic_bounds():
    i = Sym("i")
    begin, end = lin(Sym("begin")), lin(Sym("end"))
    r = RSD.point("a", (lin(i + 1, ["i"]),))
    out = r.expand("i", begin, end, 1)
    lo, hi, step = out.dims[0]
    assert lo.coef("begin") == 1 and lo.const == 1
    assert hi.coef("end") == 1 and hi.const == 1


def test_expand_trapped_negative_range():
    """Negative coefficients flip bounds."""
    i = Sym("i")
    r = RSD.point("a", (lin(10 - i, ["i"]),))
    out = r.expand("i", c(1), c(4), 1)
    lo, hi, step = out.dims[0]
    assert lo.const == 6 and hi.const == 9 and step == 1


def test_union_jacobi_stencil():
    """The paper's Section 4.3 union: b reads collapse to
    [0, M-1 : begin-1, end+1] (0-based)."""
    begin, end = Sym("begin"), Sym("end")
    rows_full = (c(0), c(63), 1)
    parts = [
        RSD("b", (rows_full, (lin(begin), lin(end), 1))),
        RSD("b", (rows_full, (lin(begin - 1), lin(end - 1), 1))),
        RSD("b", (rows_full, (lin(begin + 1), lin(end + 1), 1))),
    ]
    u = parts[0]
    for p in parts[1:]:
        u = u.union(p)
        assert u is not None
    lo, hi, step = u.dims[1]
    assert lo.coef("begin") == 1 and lo.const == -1
    assert hi.coef("end") == 1 and hi.const == 1


def test_union_adjacent_pieces_exact():
    """[0,0] U [1,M-2] U [M-1,M-1] == [0,M-1], exactly (Shallow columns)."""
    M = 32
    u = rsd1(c(0), c(0)).union(rsd1(c(1), c(M - 2)))
    u = u.union(rsd1(c(M - 1), c(M - 1)))
    assert u.exact
    assert u.dims[0][0].const == 0 and u.dims[0][1].const == M - 1


def test_union_incomparable_is_none():
    a = rsd1(lin(Sym("k")), c(10))
    b = rsd1(lin(Sym("cyc")), c(10))
    assert a.union(b) is None


def test_union_two_dims_differ_is_inexact():
    a = RSD("x", ((c(0), c(3), 1), (c(0), c(3), 1)))
    b = RSD("x", ((c(4), c(7), 1), (c(4), c(7), 1)))
    u = a.union(b)
    assert u is not None and not u.exact


def test_contains_symbolic():
    begin, end = lin(Sym("begin")), lin(Sym("end"))
    outer = RSD("a", ((begin, end, 1),))
    inner = RSD("a", ((begin.shift(1), end.shift(-1), 1),))
    assert outer.contains(inner)
    assert not inner.contains(outer)


def test_contains_stride():
    outer = rsd1(c(0), c(20), 2)
    assert outer.contains(rsd1(c(0), c(20), 4))
    assert not outer.contains(rsd1(c(1), c(19), 2))


def test_may_overlap():
    k = Sym("k")
    a = rsd1(lin(k), lin(k))
    b = rsd1(lin(k + 1), lin(k + 5))
    assert not a.may_overlap(b)       # provably disjoint
    c_ = rsd1(lin(k), lin(k + 3))
    assert c_.may_overlap(b)


def test_is_contiguous():
    M, N = 16, 8
    shape = (M, N)
    begin, end = lin(Sym("begin")), lin(Sym("end"))
    full_cols = RSD("a", ((c(0), c(M - 1), 1), (begin, end, 1)))
    assert full_cols.is_contiguous(shape)
    interior = RSD("a", ((c(1), c(M - 2), 1), (begin, end, 1)))
    assert not interior.is_contiguous(shape)
    strided = RSD("a", ((c(0), c(M - 1), 1), (begin, end, 4)))
    assert not strided.is_contiguous(shape)
    column_piece = RSD("a", ((c(2), c(9), 1), (lin(Sym("j")),
                                               lin(Sym("j")), 1)))
    assert column_piece.is_contiguous(shape)


def test_substitute_sym():
    k = Sym("k")
    r = rsd1(lin(k + 1), lin(k + 5))
    out = r.substitute_sym("k", LinExpr.of({"k": 1}, 1), k + 1)
    assert out.dims[0][0].const == 2
    assert out.dims[0][1].const == 6


def test_linexpr_to_expr_roundtrip():
    i, p = Sym("i"), Sym("p")
    lin_ = linearize(3 * i + 2 * p - 4, set())
    expr = linexpr_to_expr(lin_)
    env = {"i": 5, "p": 7}
    assert eval_int(expr, env) == 3 * 5 + 2 * 7 - 4
