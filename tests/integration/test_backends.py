"""Backend conformance: every coherence backend computes the same thing.

Parametrized over the backend registry, so a newly registered protocol
is automatically held to the same bar: bit-identical application
results against the sequential run, a clean sanitizer, and an
inspector whose reconstruction reconciles with the protocol's own
counters — including on the paper's 8-processor configuration.
"""

import numpy as np
import pytest

from repro.apps import all_apps
from repro.harness import RunSpec, run
from repro.tm.coherence import protocols

BACKENDS = sorted(protocols())
APPS = all_apps()

#: One representative per opt level across apps, kept small enough for
#: CI: the full 6-app x 5-opt matrix runs in the baseline/bench gates.
MATRIX = [
    ("jacobi", "base"),
    ("is", "aggr"),
    ("mgs", "aggr+cons"),
    ("shallow", "merge"),
    ("fft3d", "push"),
]


def check(app_name, arrays):
    """The repo's result contract: each app's check_arrays vs reference."""
    app = APPS[app_name]
    ref = app.reference(dict(app.datasets["tiny"].params))
    for name in app.check_arrays:
        np.testing.assert_allclose(
            arrays[name], ref[name], rtol=1e-9, atol=1e-12,
            err_msg=f"{app_name}: array {name!r} diverges")


def test_registry_lists_all_backends():
    assert {"mw-lrc", "hlrc", "adaptive"} <= set(BACKENDS)


@pytest.mark.parametrize("protocol", BACKENDS)
@pytest.mark.parametrize("app,opt", MATRIX)
def test_results_match_reference(app, opt, protocol):
    out = run(RunSpec(app=app, mode="dsm", dataset="tiny", nprocs=4,
                      opt=opt, page_size=1024, protocol=protocol))
    check(app, out.arrays)


@pytest.mark.parametrize("protocol", BACKENDS)
def test_eight_procs_paper_config(protocol):
    """The paper's 8-processor runs hold under every backend."""
    for app in ("jacobi", "is"):
        out = run(RunSpec(app=app, mode="dsm", dataset="tiny",
                          nprocs=8, opt="base", page_size=1024,
                          protocol=protocol))
        check(app, out.arrays)


@pytest.mark.parametrize("protocol", BACKENDS)
@pytest.mark.parametrize("app,opt", [("jacobi", "base"), ("is", "aggr"),
                                     ("mgs", "aggr")])
def test_inspector_reconciles(app, opt, protocol):
    from repro.inspect import InspectReport

    out = run(RunSpec(app=app, mode="dsm", dataset="tiny", nprocs=4,
                      opt=opt, page_size=1024, protocol=protocol,
                      telemetry=True))
    rep = InspectReport.build(out, title=f"{app}@{protocol}")
    assert rep.timelines.violations == []
    assert rep.reconcile() == []


@pytest.mark.parametrize("protocol", BACKENDS)
@pytest.mark.parametrize("app,opt", [("jacobi", "aggr+cons"),
                                     ("is", "aggr")])
def test_sanitizer_clean(app, opt, protocol):
    from repro.sanitizer.replay import sanitize_run

    _, rep = sanitize_run(app, opt=opt, protocol=protocol)
    assert rep.ok, [f"[{f.category}:{f.kind}] {f.detail}"
                    for f in rep.findings]


def test_mw_lrc_and_home_backends_differ_only_in_traffic():
    """Same answers, different message economy (IS is multi-writer
    heavy: hlrc's home flushes beat mw-lrc's per-reader diff serving)."""
    mw = run(RunSpec(app="is", mode="dsm", dataset="tiny", nprocs=4,
                     opt="base", page_size=1024, protocol="mw-lrc"))
    hl = run(RunSpec(app="is", mode="dsm", dataset="tiny", nprocs=4,
                     opt="base", page_size=1024, protocol="hlrc"))
    for name in mw.arrays:
        assert np.array_equal(mw.arrays[name], hl.arrays[name])
    assert hl.messages < mw.messages
    assert hl.stats.home_flushes > 0
    assert hl.stats.page_fetches > 0
    assert mw.stats.home_flushes == 0
    assert mw.stats.page_fetches == 0


def test_adaptive_migrates_and_saves_flushes():
    """Jacobi's pages are single-writer: adaptive flips them to owner
    mode and the flush traffic collapses versus static hlrc."""
    hl = run(RunSpec(app="jacobi", mode="dsm", dataset="tiny", nprocs=4,
                     opt="base", page_size=1024, protocol="hlrc"))
    ad = run(RunSpec(app="jacobi", mode="dsm", dataset="tiny", nprocs=4,
                     opt="base", page_size=1024, protocol="adaptive"))
    for name in hl.arrays:
        assert np.array_equal(hl.arrays[name], ad.arrays[name])
    assert ad.stats.home_migrations > 0
    assert ad.stats.home_flushes < hl.stats.home_flushes
    assert ad.messages < hl.messages
