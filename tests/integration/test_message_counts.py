"""Analytic message-count checks from the paper's Section 2.

For Jacobi with n processors and m pages per boundary column the paper
derives, per iteration:

* base TreadMarks: 2(n-1) messages at each barrier plus 4m(n-1) diff
  request/response pairs for the invalidated boundary pages;
* message passing: just 2(n-1) boundary-exchange messages.
"""

import pytest

from repro.apps import get_app
from repro.harness.modes import OPT_LEVELS
from repro.harness.runner import run_dsm, run_mp


def jacobi_params(M, N, iters):
    return {"M": M, "N": N, "iters": iters}


def run_jacobi_dsm(nprocs, M, N, iters, opt=None, page_size=256):
    app = get_app("jacobi")
    prog = app.build_program(jacobi_params(M, N, iters), nprocs)
    return run_dsm(prog, nprocs=nprocs, opt=opt, page_size=page_size,
                   snapshot=False)


def test_base_jacobi_message_formula():
    """Per-iteration messages match the paper's 2*2(n-1) + 4m(n-1)."""
    n = 4
    M, N = 64, 64          # column = 512 bytes = m=2 pages of 256
    m = (M * 8) // 256
    it1 = run_jacobi_dsm(n, M, N, 1)
    it3 = run_jacobi_dsm(n, M, N, 3)
    per_iter = (it3.run.messages - it1.run.messages) / 2
    expected = 2 * 2 * (n - 1) + 4 * m * (n - 1)
    assert per_iter == pytest.approx(expected, rel=0.05)


def test_mp_jacobi_message_formula():
    """Hand-coded Jacobi sends exactly 2(n-1) messages per iteration."""
    app = get_app("jacobi")
    n = 4
    r1 = run_mp(app, jacobi_params(64, 64, 1), nprocs=n)
    r3 = run_mp(app, jacobi_params(64, 64, 3), nprocs=n)
    per_iter = (r3.run.messages - r1.run.messages) / 2
    assert per_iter == 2 * (n - 1)


def test_push_jacobi_replaces_barrier2():
    """With Push, barrier(2) disappears: per-iteration messages become
    2(n-1) push messages + 2(n-1) barrier(1) messages."""
    n = 4
    it1 = run_jacobi_dsm(n, 64, 64, 1, opt=OPT_LEVELS["push"])
    it3 = run_jacobi_dsm(n, 64, 64, 3, opt=OPT_LEVELS["push"])
    per_iter = (it3.run.messages - it1.run.messages) / 2
    assert per_iter == pytest.approx(2 * (n - 1) + 2 * (n - 1), rel=0.05)


def test_aggregation_halves_boundary_fetch_messages():
    """One Validate per iteration replaces per-page fault traffic: the
    4m(n-1) term collapses to 4(n-1) (one request/response per
    neighbour pair) regardless of m."""
    n = 4
    M = 128                 # m = 4 pages per column at 256-byte pages
    base1 = run_jacobi_dsm(n, M, 64, 1)
    base3 = run_jacobi_dsm(n, M, 64, 3)
    aggr1 = run_jacobi_dsm(n, M, 64, 1, opt=OPT_LEVELS["aggr"])
    aggr3 = run_jacobi_dsm(n, M, 64, 3, opt=OPT_LEVELS["aggr"])
    base_per_iter = (base3.run.messages - base1.run.messages) / 2
    aggr_per_iter = (aggr3.run.messages - aggr1.run.messages) / 2
    m = (M * 8) // 256
    assert base_per_iter == pytest.approx(
        2 * 2 * (n - 1) + 4 * m * (n - 1), rel=0.05)
    assert aggr_per_iter == pytest.approx(
        2 * 2 * (n - 1) + 4 * (n - 1), rel=0.05)


def test_barrier_messages_scale_with_processors():
    for n in (2, 4, 8):
        res = run_jacobi_dsm(n, 64, 64, 1, page_size=256)
        # Every barrier contributes 2(n-1): arrival + departure.
        barriers = res.run.net.by_kind["barrier_arrive"]
        departs = res.run.net.by_kind["barrier_depart"]
        assert barriers == departs
        assert barriers % (n - 1) == 0
