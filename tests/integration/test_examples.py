"""Smoke tests: the shipped examples must run end to end."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_example(name, *args, timeout=240):
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True, text=True, timeout=timeout)


def test_custom_app_runs():
    proc = run_example("custom_app.py", "4")
    assert proc.returncode == 0, proc.stderr
    assert "correct=True" in proc.stdout


def test_compiler_explorer_runs_for_every_app():
    for app in ("jacobi", "is", "gauss"):
        proc = run_example("compiler_explorer.py", app, "merge")
        assert proc.returncode == 0, proc.stderr
        assert "Access analysis" in proc.stdout
        assert "Transformed program" in proc.stdout


def test_compiler_explorer_shows_jacobi_push():
    proc = run_example("compiler_explorer.py", "jacobi", "push")
    assert "call Push(" in proc.stdout
    assert "WRITE_ALL" in proc.stdout


@pytest.mark.slow
def test_quickstart_runs():
    proc = run_example("quickstart.py", "4", timeout=420)
    assert proc.returncode == 0, proc.stderr
    assert "numpy-reference answer" in proc.stdout


def test_protocol_trace_example():
    proc = run_example("protocol_trace.py")
    assert proc.returncode == 0, proc.stderr
    assert "final counter: 6.0" in proc.stdout
    assert "lock_grant" in proc.stdout
