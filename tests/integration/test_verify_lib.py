"""Tests for the cross-mode verification library."""

from repro.apps import get_app
from repro.harness.verify import verify_app


def test_verify_app_jacobi():
    report = verify_app(get_app("jacobi"), dataset="tiny", nprocs=4)
    assert report.ok, str(report)
    assert "dsm:push" in report.checked
    assert "pvme" in report.checked and "xhpf" in report.checked


def test_verify_app_is_includes_xhpf_refusal():
    report = verify_app(get_app("is"), dataset="tiny", nprocs=4)
    assert report.ok, str(report)
    assert "xhpf" in report.checked


def test_verify_app_with_gc():
    report = verify_app(get_app("gauss"), dataset="tiny", nprocs=4,
                        gc_threshold=32)
    assert report.ok, str(report)


def test_report_formatting():
    report = verify_app(get_app("mgs"), dataset="tiny", nprocs=2)
    text = str(report)
    assert "OK" in text and "mgs" in text
