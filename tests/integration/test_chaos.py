"""Chaos harness end-to-end: faulted runs are invisible except in cost."""

import json

import pytest

from repro.harness import chaos


@pytest.mark.smoke
@pytest.mark.parametrize("app,opt", [("jacobi", "base"), ("is", "aggr")])
def test_heavy_chaos_case_is_bit_identical(app, opt):
    case = chaos.run_case(app, opt, "heavy", seed=1)
    assert case.ok, case.as_dict()
    assert case.identical
    assert case.violations == []
    assert case.faults_injected > 0          # the plan actually fired
    assert case.acks > 0
    assert case.added_time > 0
    if app == "jacobi":
        # Barrier-only app: the protocol sends exactly the same data
        # messages, so the entire overhead is retransmits + acks.  (A
        # lock-based app like 'is' may legally reshape its lock-forward
        # chains under fault-induced timing shifts.)
        assert case.extra_messages == case.retransmits + case.acks


def test_case_seed_reproducibility():
    a = chaos.run_case("jacobi", "aggr", "moderate", seed=9,
                       inspect=False)
    b = chaos.run_case("jacobi", "aggr", "moderate", seed=9,
                       inspect=False)
    assert a.as_dict() == b.as_dict()


def test_sweep_filters_inapplicable_levels():
    # 'push' does not apply to is; asking for it yields no is cases.
    cases = chaos.sweep(apps=["is"], opts=["push"],
                        intensities=["light"], inspect=False)
    assert cases == []


def test_render_reports_failures():
    case = chaos.ChaosCase(app="x", opt="base", intensity="light",
                           seed=0, identical=False)
    text = chaos.render_chaos([case])
    assert "DIVERGED" in text and "CHAOS FAIL" in text


@pytest.mark.smoke
def test_chaos_cli_end_to_end(capsys, tmp_path):
    from repro.__main__ import main
    json_path = tmp_path / "chaos.json"
    rc = main(["chaos", "--apps", "jacobi", "--opts", "base",
               "--intensity", "heavy", "--seed", "3",
               "--json", str(json_path)])
    assert rc == 0
    out = capsys.readouterr().out
    assert "CHAOS OK" in out
    data = json.loads(json_path.read_text())
    assert data["seed"] == 3
    assert data["cases"][0]["ok"] is True
    assert data["cases"][0]["intensity"] == "heavy"
