"""Inspector invariants across every app, mode, and opt level.

For each benchmark application at every applicable optimization level
(plus the mp mode), a traced tiny run must yield

* page timelines with zero illegal transitions,
* reconstruction totals equal to the run's own ``TmStats``,
* wait-span totals equal to the ``t_*_wait`` stat accumulators,
* a critical path whose segments tile end-to-end simulated time.

This is the deterministic, all-opt-levels complement to the randomized
schedules in ``tests/property/test_protocol_random.py``.
"""

import pytest

from repro.apps import all_apps, get_app
from repro.harness import RunSpec, run
from repro.harness.modes import applicable_levels
from repro.inspect import InspectReport

CASES = [(app, "dsm", opt)
         for app in sorted(all_apps())
         for opt in sorted(applicable_levels(get_app(app)))]
CASES += [(app, "mp", None) for app in sorted(all_apps())]


@pytest.mark.smoke
@pytest.mark.parametrize("app,mode,opt", CASES,
                         ids=[f"{a}-{m}-{o}" for a, m, o in CASES])
def test_inspection_reconciles(app, mode, opt):
    out = run(RunSpec(app=app, mode=mode, dataset="tiny", nprocs=4,
                      opt=opt, page_size=1024, telemetry=True))
    rep = InspectReport.build(out, title=f"{app}/{mode}/{opt}")
    assert rep.reconcile() == []
    # The report renders without error and names every section.
    text = rep.render()
    assert "Critical path" in text
    assert "Lock contention" in text


@pytest.mark.smoke
def test_inspect_cli_end_to_end(capsys, tmp_path):
    from repro.__main__ import main
    json_path = tmp_path / "report.json"
    rc = main(["inspect", "jacobi", "--mode", "dsm", "--opt", "aggr",
               "--json", str(json_path)])
    assert rc == 0
    text = capsys.readouterr().out
    assert "Hot pages" in text
    assert "Critical path" in text
    assert "reconcile" in text
    assert json_path.exists()


@pytest.mark.smoke
def test_check_cli_against_committed_baselines(capsys):
    """`python -m repro check` passes on the checked-in baselines."""
    from repro.__main__ import main
    assert main(["check"]) == 0
    assert "OK" in capsys.readouterr().out
