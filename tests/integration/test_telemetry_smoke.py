"""End-to-end telemetry smoke test (the CI `smoke` job).

Runs one small application through the ``python -m repro trace`` CLI
and asserts the exported Chrome trace is non-empty and well-formed:
one track per simulated processor, and events for faults, diffs,
barriers and validates.
"""

import json

import pytest

from repro.__main__ import main

NPROCS = 4


@pytest.fixture(scope="module")
def trace_doc(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("trace")
    out = tmp / "trace.json"
    jsonl = tmp / "events.jsonl"
    rc = main(["trace", "jacobi", "--out", str(out),
               "--jsonl", str(jsonl),
               "--nprocs", str(NPROCS), "--dataset", "tiny"])
    assert rc == 0
    return json.loads(out.read_text()), jsonl.read_text()


@pytest.mark.smoke
class TestTraceSmoke:
    def test_trace_nonempty_and_wellformed(self, trace_doc):
        doc, _ = trace_doc
        evs = doc["traceEvents"]
        assert len(evs) > 100
        for e in evs:
            assert e["ph"] in ("M", "X", "i")
            assert isinstance(e["pid"], int)
            assert isinstance(e["tid"], int)
            if e["ph"] != "M":
                assert e["ts"] >= 0

    def test_one_track_per_processor(self, trace_doc):
        doc, _ = trace_doc
        names = {e["args"]["name"] for e in doc["traceEvents"]
                 if e["ph"] == "M" and e["name"] == "thread_name"}
        assert names == {f"P{p}" for p in range(NPROCS)}
        # Every processor actually produced spans on its own track.
        tids = {e["tid"] for e in doc["traceEvents"] if e["ph"] == "X"}
        assert tids == set(range(NPROCS))

    @pytest.mark.parametrize("kind", ["tm.read_fault", "tm.write_fault",
                                      "tm.diff_create", "tm.diff_apply",
                                      "tm.barrier", "tm.validate"])
    def test_required_event_families_present(self, trace_doc, kind):
        doc, _ = trace_doc
        n = sum(1 for e in doc["traceEvents"]
                if e["ph"] == "i" and e["name"] == kind)
        assert n > 0, kind

    def test_metadata_counts_consistent(self, trace_doc):
        doc, _ = trace_doc
        counts = doc["otherData"]["event_counts"]
        instants = [e for e in doc["traceEvents"] if e["ph"] == "i"]
        assert sum(counts.values()) == len(instants)
        assert doc["otherData"]["metrics_total"]["tm.barriers"] > 0

    def test_jsonl_lines_parse(self, trace_doc):
        _, jsonl = trace_doc
        lines = jsonl.strip().splitlines()
        assert lines
        recs = [json.loads(ln) for ln in lines]
        assert {r["rec"] for r in recs} == {"event", "span"}


@pytest.mark.smoke
def test_legacy_artifact_cli_still_works(capsys):
    assert main(["table1", "--dataset", "tiny"]) == 0
    assert "jacobi" in capsys.readouterr().out.lower()
