"""Determinism under observation, across every coherence backend.

The wall-clock observatory only *reads* engine state, so a profiled or
monitored run must be byte-identical to a bare one — same simulated
time, same traffic, same array contents — under every registered
protocol.  The second half closes the offline loop: a JSONL telemetry
export reloaded from disk must drive the inspector to the same report
as the live run.
"""

import json
from types import SimpleNamespace

import pytest

from repro.harness import RunSpec, run
from repro.inspect import InspectReport
from repro.observe import RunMonitor
from repro.telemetry import Telemetry

BACKENDS = ("mw-lrc", "hlrc", "adaptive")

SPEC = dict(app="jacobi", mode="dsm", dataset="tiny", nprocs=4,
            page_size=1024, opt="aggr")


def outcome_fingerprint(out):
    """Everything a run produces that the observatory must not touch."""
    return {
        "time": float(out.time),
        "messages": int(out.messages),
        "data_bytes": int(out.data_bytes),
        "stats": out.stats.as_dict() if out.stats is not None else None,
        "arrays": {name: arr.tobytes()
                   for name, arr in sorted(out.arrays.items())},
    }


@pytest.mark.parametrize("protocol", BACKENDS)
def test_observatory_is_invisible(protocol):
    bare = run(RunSpec(protocol=protocol, **SPEC))
    beats = []
    mon = RunMonitor(interval_s=0.0, callback=beats.append,
                     mask_bits=2)
    observed = run(RunSpec(protocol=protocol, profile=True,
                           monitor=mon, **SPEC))
    assert beats, "monitor never ticked"
    assert observed.profile.n_events > 0
    assert outcome_fingerprint(observed) == outcome_fingerprint(bare)


@pytest.mark.parametrize("protocol", BACKENDS)
def test_observatory_is_invisible_with_telemetry(protocol):
    """Profiling on top of a traced run must not perturb the event
    stream either: identical event counts and span totals."""
    plain = run(RunSpec(protocol=protocol, telemetry=True, **SPEC))
    profiled = run(RunSpec(protocol=protocol, telemetry=True,
                           profile=True, **SPEC))
    assert outcome_fingerprint(profiled) == outcome_fingerprint(plain)
    assert profiled.telemetry.counts() == plain.telemetry.counts()
    assert (profiled.telemetry.events_jsonl()
            == plain.telemetry.events_jsonl())


@pytest.mark.parametrize("protocol", BACKENDS)
def test_jsonl_roundtrip_reproduces_inspect_report(protocol, tmp_path):
    out = run(RunSpec(protocol=protocol, telemetry=True, **SPEC))
    live = InspectReport.build(out, title="run")
    assert live.reconcile() == []

    path = tmp_path / "events.jsonl"
    out.telemetry.write_jsonl(path)
    reloaded = Telemetry.from_jsonl(path)
    assert reloaded.counts() == out.telemetry.counts()
    assert len(reloaded.spans) == len(out.telemetry.spans)

    # Offline stand-in for the outcome: only the summary scalars
    # survive a JSONL export; TmStats/NetStats cross-checks are
    # skipped on both sides of the comparison below.
    offline_out = SimpleNamespace(
        telemetry=reloaded, time=out.time, messages=out.messages,
        data_bytes=out.data_bytes, stats=None, net=None)
    offline = InspectReport.build(offline_out, title="run")

    def fingerprint(report):
        d = report.as_dict()
        d.pop("tm_stats", None)
        # json round-trips tuples to lists, matching the reloaded side.
        return json.dumps(d, sort_keys=True)

    assert fingerprint(offline) == fingerprint(live)


def test_jsonl_roundtrip_access_stream(tmp_path):
    """The loader also closes the loop for an access-traced run (the
    densest stream: rt.* events carry section geometry)."""
    tel = Telemetry(access_events=True)
    out = run(RunSpec(telemetry=tel, **SPEC))
    text = out.telemetry.events_jsonl()
    path = tmp_path / "events.jsonl"
    path.write_text(text + "\n")
    reloaded = Telemetry.from_jsonl(path)
    assert reloaded.counts() == out.telemetry.counts()
    assert reloaded.events_jsonl() == text
