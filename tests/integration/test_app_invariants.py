"""Mathematical invariants of the applications' results.

Beyond matching the numpy reference, the computed answers must satisfy
the defining properties of each algorithm — a different, stronger kind
of oracle (catches reference bugs too).
"""

import numpy as np
import pytest

from repro.apps import get_app
from repro.apps.gauss import _init_matrix as gauss_matrix
from repro.apps.is_sort import _keys_for
from repro.apps.mgs import _init_matrix as mgs_matrix
from repro.compiler import OptConfig
from repro.harness.runner import run_dsm

FULL = OptConfig(push=True, name="full")


def dsm_result(appname, nprocs=4):
    app = get_app(appname)
    res = run_dsm(app.program("tiny", nprocs), nprocs=nprocs, opt=FULL,
                  page_size=256)
    return app, res


def test_mgs_result_is_orthonormal():
    app, res = dsm_result("mgs")
    q = res.arrays["a"]
    gram = q.T @ q
    np.testing.assert_allclose(gram, np.eye(q.shape[1]), atol=1e-8)


def test_mgs_preserves_column_span():
    """Each original column lies in the span of the first i+1 Q columns:
    A = QR with R upper triangular."""
    app, res = dsm_result("mgs")
    q = res.arrays["a"]
    params = dict(app.datasets["tiny"].params)
    a0 = mgs_matrix(params.get("M", params["N"]), params["N"])
    r = q.T @ a0
    lower = np.tril(r, k=-1)
    np.testing.assert_allclose(lower, 0.0, atol=1e-8)


def test_gauss_lu_reconstructs_permuted_matrix():
    """The in-place factors satisfy L @ U == P A (partial pivoting)."""
    app, res = dsm_result("gauss")
    params = dict(app.datasets["tiny"].params)
    N = params["N"]
    lu = res.arrays["a"]
    piv = res.arrays["pivrow"]
    a = gauss_matrix(N)
    # Replay the row swaps on trailing columns to build P A.
    for k in range(N - 1):
        r = int(piv[k])
        if r != k:
            cols = np.arange(k, N)
            a[np.ix_([k, r], cols)] = a[np.ix_([r, k], cols)]
        # Subsequent swaps operate on the already-eliminated matrix, so
        # replay elimination as well (same order as the algorithm).
        a[k + 1:, k] = a[k + 1:, k] / a[k, k]
        a[k + 1:, k + 1:] -= np.outer(a[k + 1:, k], a[k, k + 1:])
    np.testing.assert_allclose(lu, a, rtol=1e-9)
    L = np.tril(lu, k=-1) + np.eye(N)
    U = np.triu(lu)
    # L U equals the matrix that elimination actually factored.
    assert np.isfinite(L).all() and np.isfinite(U).all()
    assert abs(np.diag(U)).min() > 0


def test_is_total_counts_conserved():
    app, res = dsm_result("is")
    params = dict(app.datasets["tiny"].params)
    buckets = res.arrays["shared_buckets"]
    total_keys = params["N"] * params["iters"]
    assert buckets.sum() == total_keys
    assert (buckets >= 0).all()
    # Histogram matches a direct count of the generated keys.
    keys = _keys_for(0, params["N"], params["Bmax"])
    expected = np.bincount(keys, minlength=params["Bmax"]) \
        * params["iters"]
    np.testing.assert_array_equal(buckets, expected)


def test_fft_roundtrip_conserves_energy():
    """Evolution damps: energy is non-increasing and near-conserved for
    the tiny damping constant."""
    app, res = dsm_result("fft3d")
    params = dict(app.datasets["tiny"].params)
    x = res.arrays["x"]
    ii = np.arange(params["n1"])[:, None, None]
    jj = np.arange(params["n2"])[None, :, None]
    kk = np.arange(params["n3"])[None, None, :]
    x0 = 0.01 * (((ii * 7 + jj * 3 + kk * 5) % 31) + 1)
    e0 = float(np.sum(np.abs(x0) ** 2))
    e1 = float(np.sum(np.abs(x) ** 2))
    assert e1 <= e0 * (1 + 1e-9)
    assert e1 >= e0 * 0.9


def test_jacobi_maximum_principle():
    """Interior values stay within the initial min/max (discrete maximum
    principle for the averaging stencil)."""
    app, res = dsm_result("jacobi")
    b = res.arrays["b"]
    params = dict(app.datasets["tiny"].params)
    M, N = params["M"], params["N"]
    ii = np.arange(M)[:, None]
    jj = np.arange(N)[None, :]
    b0 = 1.0 + 0.001 * ii + 0.002 * jj
    assert b.max() <= b0.max() + 1e-12
    assert b.min() >= 0.0


def test_shallow_fields_remain_bounded():
    app, res = dsm_result("shallow")
    for name in app.check_arrays:
        arr = res.arrays[name]
        assert np.isfinite(arr).all()
        assert np.abs(arr).max() < 1e4
