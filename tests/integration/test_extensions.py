"""Tests of the designed-but-unimplemented paper features we provide.

* Asynchronous Push (Section 3.2.3 designs it; the paper's
  implementation "currently supports only the synchronous version").
* Adaptive sync+data merge (Section 3.3 describes the trade-off; we
  make the choice at run time from the request's page count).
* Garbage collection under full application workloads.
"""

import numpy as np
import pytest

from repro.apps import get_app
from repro.compiler import OptConfig
from repro.harness.runner import run_dsm


def check(res, app, dataset="tiny"):
    ref = app.reference(dict(app.datasets[dataset].params))
    for name in app.check_arrays:
        np.testing.assert_allclose(res.arrays[name], ref[name],
                                   rtol=1e-9, atol=1e-12)


class TestAsyncPush:
    @pytest.mark.parametrize("appname", ["jacobi", "fft3d"])
    def test_correctness(self, appname):
        app = get_app(appname)
        opt = OptConfig(push=True, async_push=True, name="async-push")
        res = run_dsm(app.program("tiny", 4), nprocs=4, opt=opt,
                      page_size=256)
        check(res, app)

    def test_same_message_count_as_sync_push(self):
        app = get_app("jacobi")
        sync = run_dsm(app.program("tiny", 4), nprocs=4,
                       opt=OptConfig(push=True, name="p"),
                       page_size=256, snapshot=False)
        asy = run_dsm(app.program("tiny", 4), nprocs=4,
                      opt=OptConfig(push=True, async_push=True, name="ap"),
                      page_size=256, snapshot=False)
        assert asy.run.net.by_kind["push_data"] == \
            sync.run.net.by_kind["push_data"]

    def test_extra_faults_for_deferred_receives(self):
        """Async operation pays extra protection/fault work (the paper's
        Section 3.2.3 observation), completing plans at first touch."""
        app = get_app("jacobi")
        sync = run_dsm(app.program("tiny", 4), nprocs=4,
                       opt=OptConfig(push=True, name="p"),
                       page_size=256, snapshot=False)
        asy = run_dsm(app.program("tiny", 4), nprocs=4,
                      opt=OptConfig(push=True, async_push=True, name="ap"),
                      page_size=256, snapshot=False)
        assert asy.run.stats.segv >= sync.run.stats.segv


class TestAdaptiveMerge:
    def test_correctness_small_limit(self):
        app = get_app("is")
        opt = OptConfig(sync_data_merge=True, merge_page_limit=1,
                        name="merge-adaptive")
        res = run_dsm(app.program("tiny", 4), nprocs=4, opt=opt,
                      page_size=256)
        check(res, app)

    def test_limit_disables_large_merges(self):
        """With limit 0, every w_sync falls back to a plain Validate."""
        app = get_app("is")
        merged = run_dsm(app.program("tiny", 4), nprocs=4,
                         opt=OptConfig(sync_data_merge=True, name="m"),
                         page_size=256, snapshot=False)
        limited = run_dsm(app.program("tiny", 4), nprocs=4,
                          opt=OptConfig(sync_data_merge=True,
                                        merge_page_limit=0, name="m0"),
                          page_size=256, snapshot=False)
        # No donations when every merge falls back.
        assert limited.run.net.by_kind.get("diff_donate", 0) == 0
        assert merged.run.net.by_kind.get("diff_donate", 0) > 0

    def test_generous_limit_equals_unconditional_merge(self):
        """A limit larger than any request leaves merging unchanged."""
        app = get_app("is")
        merged = run_dsm(app.program("tiny", 4), nprocs=4,
                         opt=OptConfig(sync_data_merge=True, name="m"),
                         page_size=256, snapshot=False)
        adaptive = run_dsm(app.program("tiny", 4), nprocs=4,
                           opt=OptConfig(sync_data_merge=True,
                                         merge_page_limit=10 ** 6,
                                         name="ma"),
                           page_size=256, snapshot=False)
        assert adaptive.time == merged.time
        assert adaptive.run.messages == merged.run.messages


class TestGcUnderApps:
    @pytest.mark.parametrize("appname", ["jacobi", "gauss", "is"])
    def test_apps_correct_with_aggressive_gc(self, appname):
        app = get_app(appname)
        res = run_dsm(app.program("tiny", 4), nprocs=4, opt=None,
                      page_size=256, gc_threshold=16)
        check(res, app)

    def test_gc_with_optimizations(self):
        app = get_app("jacobi")
        opt = OptConfig(push=True, name="full")
        res = run_dsm(app.program("tiny", 4), nprocs=4, opt=opt,
                      page_size=256, gc_threshold=16)
        check(res, app)
