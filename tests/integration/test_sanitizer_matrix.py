"""The sanitizer's soundness proof, run end to end.

Completeness: every app at every applicable opt level sanitizes clean
(no races, no hint findings, no stream anomalies).  Detection: every
entry of the mutated-hint corpus — shrunk, shifted, dropped sections
injected through the compiler's ``hint_mutation`` hook — is reported.
A hand-built racy program checks the race detector end to end, and the
CLI wrappers are exercised once each.
"""

import json

import pytest

from repro.apps import all_apps
from repro.harness.modes import applicable_levels
from repro.sanitizer import matrix

APPS = sorted(all_apps())


@pytest.mark.parametrize("app", APPS)
def test_clean_matrix_app(app):
    cases = matrix.clean_matrix(apps=[app])
    levels = applicable_levels(all_apps()[app])
    assert [c.opt for c in cases] == list(levels)
    for case in cases:
        rep = case.report
        assert case.ok, f"{app} {case.opt}:\n{rep.render()}"
        assert rep.problems == []
        assert rep.accesses > 0
        # Hint checking armed exactly at the eliminating levels.
        assert rep.hint_checking == (case.opt in matrix.ELIMINATING)


@pytest.mark.parametrize("app", APPS)
def test_mutation_corpus_fully_detected(app):
    corpus = matrix.build_corpus(apps=[app])
    if not corpus:
        pytest.skip(f"{app} has no eliminating-level hints to mutate")
    matrix.run_corpus(corpus)
    missed = [e for e in corpus if not e.detected]
    assert not missed, "\n".join(
        f"{e.app} {e.opt} site {e.site} {e.target}/{e.op}: "
        f"{e.original} -> {e.mutated}" for e in missed)


def test_corpus_covers_every_mutation_shape():
    corpus = matrix.build_corpus()
    shapes = {(e.target, e.op) for e in corpus}
    assert ("validate", "shrink") in shapes
    assert ("validate", "shift") in shapes
    assert ("push-write", "drop") in shapes
    assert ("push-write", "shrink") in shapes
    assert ("push-read", "shift") in shapes


def test_hand_built_racy_program_detected():
    from repro.memory import SharedLayout
    from repro.sanitizer import Sanitizer
    from repro.telemetry import Telemetry
    from repro.tm.system import TmSystem

    layout = SharedLayout(page_size=64)
    layout.add_array("a", (16,))
    tel = Telemetry(access_events=True)
    system = TmSystem(nprocs=2, layout=layout, telemetry=tel)
    san = Sanitizer(layout, 2, hint_checking=False).attach(tel.bus)

    def main(node):
        a = node.array("a")
        a[node.pid] = 1.0       # disjoint elements, same page: no race
        a[7] = float(node.pid)  # same element, no ordering: race
        node.barrier()

    system.run(main)
    rep = san.finish()
    races = [f for f in rep.findings if f.category == "race"]
    assert races, rep.render()
    assert any(f.kind == "race" and "a[7]" in f.where for f in races)


def test_lock_ordered_program_clean():
    from repro.memory import SharedLayout
    from repro.sanitizer import Sanitizer
    from repro.telemetry import Telemetry
    from repro.tm.system import TmSystem

    layout = SharedLayout(page_size=64)
    layout.add_array("a", (16,))
    tel = Telemetry(access_events=True)
    system = TmSystem(nprocs=2, layout=layout, telemetry=tel)
    san = Sanitizer(layout, 2, hint_checking=False).attach(tel.bus)

    def main(node):
        a = node.array("a")
        node.lock_acquire(0)
        a[7] = a[7] + 1.0
        node.lock_release(0)
        node.barrier()

    system.run(main)
    rep = san.finish()
    assert rep.ok, rep.render()


def test_cli_sanitize_and_bench(tmp_path, capsys):
    from repro.__main__ import bench_main, sanitize_main

    assert sanitize_main(["jacobi", "--opt", "merge"]) == 0
    out = capsys.readouterr().out
    assert "CLEAN" in out

    path = tmp_path / "bench.json"
    assert bench_main(["--apps", "jacobi", "--json", str(path)]) == 0
    payload = json.loads(path.read_text())
    assert payload["schema"] == "repro-bench/1"
    modes = {m["mode"] for m in payload["apps"]["jacobi"]["modes"]}
    assert "dsm:push" in modes and "mp" in modes
    for m in payload["apps"]["jacobi"]["modes"]:
        assert m["time_us"] > 0 and m["speedup"] > 0


def test_cli_sanitize_detects_mutation(capsys):
    """The CI smoke case: one mutated hint makes the CLI exit non-zero."""
    from repro.__main__ import sanitize_main
    from repro.compiler.transform import hint_mutation
    from repro.sanitizer.replay import _resolve

    corpus = matrix.build_corpus(apps=["jacobi"])
    entry = next(e for e in corpus if e.op == "shrink")
    _, _, prog, _ = _resolve(entry.app, entry.opt, "tiny", 4, 1024)
    shapes = {a.name: a.shape for a in prog.arrays}

    def fn(site, stmt):
        if site != entry.site:
            return stmt
        return matrix.apply_mutation(stmt, entry, shapes)

    with hint_mutation(fn):
        rc = sanitize_main([entry.app, "--opt", entry.opt])
    assert rc == 1
    assert "uncovered" in capsys.readouterr().out


def test_bench_payload_matches_direct_runs():
    from repro.harness import bench
    from repro.harness.experiments import app_runs, clear_cache

    clear_cache()
    payload = bench.bench(apps=["is"])
    runs = app_runs(all_apps()["is"], dataset="tiny", nprocs=4,
                    page_size=1024)
    by_mode = {m["mode"]: m for m in payload["apps"]["is"]["modes"]}
    assert by_mode["dsm:base"]["messages"] == runs.dsm["base"].messages
    assert by_mode["mp"]["data_bytes"] == runs.pvme.data_bytes
    assert payload["apps"]["is"]["best_dsm_level"] == runs.best_level()
