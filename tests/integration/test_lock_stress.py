"""Lock-subsystem stress tests: contention, chains, many locks."""

import pytest

from repro.memory import SharedLayout
from repro.tm.system import TmSystem


def run(nprocs, main, arrays=(("x", (64,)),)):
    layout = SharedLayout(page_size=256)
    for name, shape in arrays:
        layout.add_array(name, shape)
    system = TmSystem(nprocs=nprocs, layout=layout)
    return system.run(main), system


def test_contention_storm_single_lock():
    """Eight processors hammer one lock; every increment survives."""
    rounds = 5

    def main(node):
        x = node.array("x")
        for _ in range(rounds):
            node.lock_acquire(0)
            x[0] = x[0] + 1.0
            node.lock_release(0)
        node.barrier()
        return float(x[0])

    res, _ = run(8, main)
    assert res.returns == [8.0 * rounds] * 8


def test_many_independent_locks():
    """Each processor uses its own lock: no cross traffic required."""
    def main(node):
        x = node.array("x")
        for _ in range(4):
            node.lock_acquire(node.pid)
            x[node.pid] = x[node.pid] + 1.0
            node.lock_release(node.pid)
        node.barrier()
        return float(x[0:8].sum())

    res, _ = run(8, main)
    assert res.returns == [32.0] * 8
    # All acquires after the first are local token re-acquisitions.
    assert res.stats.lock_local_acquires >= 8 * 3


def test_lock_chain_ping_pong():
    """Two processors alternate via two locks (hand-over-hand)."""
    def main(node):
        x = node.array("x")
        other = 1 - node.pid
        for i in range(6):
            node.lock_acquire(node.pid)
            x[node.pid] = x[other] + 1.0
            node.lock_release(node.pid)
            node.barrier()
        return float(x[node.pid])

    res, _ = run(2, main)
    # Values grow monotonically; exact pattern depends on phase order.
    assert all(v >= 5.0 for v in res.returns)


def test_lock_ids_hash_to_all_managers():
    """Locks managed by every processor work identically."""
    def main(node):
        x = node.array("x")
        for lid in range(8):
            node.lock_acquire(lid)
            x[lid] = x[lid] + 1.0
            node.lock_release(lid)
        node.barrier()
        return float(x[0:8].sum())

    res, _ = run(4, main)
    assert res.returns == [32.0] * 4


def test_nested_distinct_locks():
    """Holding two locks at once (no cyclic order: no deadlock)."""
    def main(node):
        x = node.array("x")
        for _ in range(3):
            node.lock_acquire(0)
            node.lock_acquire(1)
            x[0] = x[0] + 1.0
            x[1] = x[1] + 2.0
            node.lock_release(1)
            node.lock_release(0)
        node.barrier()
        return (float(x[0]), float(x[1]))

    res, _ = run(4, main)
    assert res.returns == [(12.0, 24.0)] * 4


def test_lock_wait_time_scales_with_contention():
    def run_n(n):
        def main(node):
            x = node.array("x")
            for _ in range(3):
                node.lock_acquire(0)
                x[0] = x[0] + 1.0
                node.lock_release(0)
            node.barrier()

        res, _ = run(n, main)
        return res.stats.t_lock_wait

    assert run_n(8) > run_n(2)
