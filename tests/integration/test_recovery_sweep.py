"""Recovery harness end-to-end: crashes are invisible except in cost."""

import json

import pytest

from repro.harness import recover


@pytest.mark.smoke
@pytest.mark.parametrize("app,opt,schedule", [
    ("jacobi", "base", "manager"),       # barrier master crashes
    ("jacobi", "aggr+cons", "early"),    # consistency elimination
    ("is", "aggr", "lock"),              # crash with the token held
    ("shallow", "merge", "barrier"),     # crash during a barrier wait
])
def test_crash_case_is_bit_identical(app, opt, schedule):
    case = recover.run_case(app, opt, schedule)
    assert case.ok, case.as_dict()
    assert case.identical
    assert case.realized            # the crash actually fired
    assert case.violations == []    # inspector reconciles exactly
    assert case.findings == []      # sanitizer stays clean
    assert case.log_bytes > 0       # the victim logged to its backup
    assert case.state_bytes > 0     # survivors shipped state back


def test_schedule_mining_covers_lock_apps_only():
    from repro.harness.spec import RunSpec, run
    base = run(RunSpec(app="jacobi", mode="dsm", dataset="tiny",
                       nprocs=4, opt="base"), telemetry=True)
    names = [s.name for s in recover.mine_schedules(base, 4)]
    assert "lock" not in names      # barrier-only app
    assert {"early", "mid", "manager"} <= set(names)
    with pytest.raises(Exception):
        recover.run_case("jacobi", "base", "lock", base=base)


def test_sweep_reduced_matrix():
    cases = recover.sweep(apps=["is"], opts=["aggr"],
                          schedules=["manager", "lock"], inspect=False)
    assert len(cases) == 2
    assert all(c.identical for c in cases), \
        [c.as_dict() for c in cases]


def test_render_reports_failures():
    case = recover.RecoverCase(app="x", opt="base", schedule="early",
                               identical=False)
    text = recover.render_recover([case])
    assert "DIVERGED" in text and "RECOVER FAIL" in text


@pytest.mark.smoke
def test_recover_cli_end_to_end(capsys, tmp_path):
    from repro.__main__ import main
    json_path = tmp_path / "recover.json"
    rc = main(["recover", "--apps", "jacobi", "--opts", "base",
               "--schedules", "early", "--json", str(json_path)])
    assert rc == 0
    out = capsys.readouterr().out
    assert "RECOVER OK" in out
    data = json.loads(json_path.read_text())
    assert data["cases"] and all(c["ok"] for c in data["cases"])
    assert data["cases"][0]["realized"]


def test_recover_cli_with_declarative_plan(capsys, tmp_path):
    plan_path = tmp_path / "plan.json"
    plan_path.write_text(json.dumps(
        {"crashes": [{"pid": 2, "t": 5000.0, "reboot_us": 2000.0}]}))
    from repro.__main__ import main
    rc = main(["recover", "--apps", "jacobi", "--opts", "aggr",
               "--plan", str(plan_path)])
    assert rc == 0
    out = capsys.readouterr().out
    assert "RECOVER OK" in out


def test_chaos_cli_with_declarative_plan(capsys, tmp_path):
    plan_path = tmp_path / "plan.json"
    plan_path.write_text(json.dumps(
        {"seed": 11, "links": {"0->1": {"drop": 0.15}}}))
    from repro.__main__ import main
    rc = main(["chaos", "--apps", "jacobi", "--opts", "base",
               "--plan", str(plan_path)])
    assert rc == 0
    out = capsys.readouterr().out
    assert "CHAOS OK" in out and "plan" in out
