"""End-to-end correctness: every app, every mode, against numpy references.

This is the heart of the test suite: each of the paper's six programs
must compute the same answer as the sequential numpy reference when run

* sequentially through the interpreter,
* on base TreadMarks (pure run-time DSM),
* on every applicable compiler-optimization level,
* hand-coded over message passing (the PVMe baseline), and
* through the XHPF lowering (where XHPF can parallelize it at all).
"""

import numpy as np
import pytest

from repro.apps import all_apps
from repro.errors import HpfError
from repro.harness.modes import applicable_levels
from repro.harness.runner import run_dsm, run_mp, run_seq, run_xhpf

APPS = all_apps()
APP_NAMES = sorted(APPS)
LEVELS = ["base", "aggr", "aggr+cons", "merge", "push"]


def check(arrays, app):
    ref = app.reference(dict(app.datasets["tiny"].params))
    for name in app.check_arrays:
        np.testing.assert_allclose(
            arrays[name], ref[name], rtol=1e-9, atol=1e-12,
            err_msg=f"{app.name}: array {name!r} diverges")


@pytest.mark.parametrize("appname", APP_NAMES)
def test_sequential_matches_reference(appname):
    app = APPS[appname]
    seq = run_seq(app.program("tiny", 1))
    check(seq.arrays, app)
    assert seq.time > 0


@pytest.mark.parametrize("appname", APP_NAMES)
@pytest.mark.parametrize("level", LEVELS)
def test_dsm_matches_reference(appname, level):
    app = APPS[appname]
    levels = applicable_levels(app)
    if level not in levels:
        pytest.skip(f"{level} not applicable to {appname} (per the paper)")
    res = run_dsm(app.program("tiny", 4), nprocs=4, opt=levels[level],
                  page_size=256)
    check(res.arrays, app)


@pytest.mark.parametrize("appname", APP_NAMES)
def test_dsm_two_processors(appname):
    app = APPS[appname]
    res = run_dsm(app.program("tiny", 2), nprocs=2, opt=None,
                  page_size=256)
    check(res.arrays, app)


@pytest.mark.parametrize("appname", APP_NAMES)
def test_pvme_matches_reference(appname):
    app = APPS[appname]
    res = run_mp(app, dict(app.datasets["tiny"].params), nprocs=4)
    check(res.arrays, app)


@pytest.mark.parametrize("appname", APP_NAMES)
def test_xhpf_matches_reference_or_refuses(appname):
    app = APPS[appname]
    if app.xhpf_ok:
        res = run_xhpf(app.program("tiny", 4), nprocs=4)
        check(res.arrays, app)
    else:
        with pytest.raises(HpfError):
            run_xhpf(app.program("tiny", 4), nprocs=4)


@pytest.mark.parametrize("appname", APP_NAMES)
def test_optimized_dsm_never_slower_than_base(appname):
    """Aggregation + consistency elimination must not hurt (paper §6.4)."""
    app = APPS[appname]
    levels = applicable_levels(app)
    base = run_dsm(app.program("tiny", 4), nprocs=4, opt=None,
                   page_size=256, snapshot=False)
    opt = run_dsm(app.program("tiny", 4), nprocs=4,
                  opt=levels["aggr+cons"], page_size=256, snapshot=False)
    assert opt.time <= base.time * 1.02


@pytest.mark.parametrize("appname", APP_NAMES)
def test_optimization_reduces_page_faults(appname):
    """Table 2: optimized programs have almost all page faults removed."""
    app = APPS[appname]
    levels = applicable_levels(app)
    base = run_dsm(app.program("tiny", 4), nprocs=4, opt=None,
                   page_size=256, snapshot=False)
    opt = run_dsm(app.program("tiny", 4), nprocs=4,
                  opt=levels["aggr+cons"], page_size=256, snapshot=False)
    assert opt.run.stats.segv < base.run.stats.segv


@pytest.mark.parametrize("appname", APP_NAMES)
def test_optimization_reduces_messages(appname):
    app = APPS[appname]
    levels = applicable_levels(app)
    base = run_dsm(app.program("tiny", 4), nprocs=4, opt=None,
                   page_size=256, snapshot=False)
    opt = run_dsm(app.program("tiny", 4), nprocs=4,
                  opt=levels["aggr+cons"], page_size=256, snapshot=False)
    assert opt.run.messages < base.run.messages


def test_is_consistency_elimination_removes_diffs():
    """IS with READ&WRITE_ALL creates no twins or diffs (paper §6.2)."""
    app = APPS["is"]
    levels = applicable_levels(app)
    res = run_dsm(app.program("tiny", 4), nprocs=4,
                  opt=levels["aggr+cons"], page_size=256, snapshot=False)
    assert res.run.stats.diffs_created == 0
    assert res.run.stats.full_pages_served > 0


def test_jacobi_write_all_increases_data():
    """The paper's Table 2 Jacobi anomaly: WRITE_ALL ships whole pages of
    mostly-unchanged data, so the optimized version moves MORE bytes."""
    app = APPS["jacobi"]
    levels = applicable_levels(app)
    base = run_dsm(app.program("tiny", 4), nprocs=4, opt=None,
                   page_size=256, snapshot=False)
    cons = run_dsm(app.program("tiny", 4), nprocs=4,
                   opt=levels["aggr+cons"], page_size=256, snapshot=False)
    assert cons.run.data_bytes > base.run.data_bytes


def test_fft_push_reduces_false_sharing_data():
    """Push ships exact sections: less data than whole-page diffs."""
    app = APPS["fft3d"]
    levels = applicable_levels(app)
    cons = run_dsm(app.program("tiny", 4), nprocs=4,
                   opt=levels["aggr+cons"], page_size=256, snapshot=False)
    push = run_dsm(app.program("tiny", 4), nprocs=4,
                   opt=levels["push"], page_size=256, snapshot=False)
    assert push.run.data_bytes < cons.run.data_bytes


def test_deterministic_across_runs():
    app = APPS["jacobi"]
    r1 = run_dsm(app.program("tiny", 4), nprocs=4, opt=None,
                 page_size=256, snapshot=False)
    r2 = run_dsm(app.program("tiny", 4), nprocs=4, opt=None,
                 page_size=256, snapshot=False)
    assert r1.time == r2.time
    assert r1.run.messages == r2.run.messages
    assert r1.run.stats.as_dict() == r2.run.stats.as_dict()
