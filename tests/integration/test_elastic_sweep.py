"""Elastic harness end-to-end: membership churn is invisible except in
cost — and the failure detector's false positives are survivable."""

import json

import pytest

from repro.harness import elastic


@pytest.mark.smoke
@pytest.mark.parametrize("app,opt,schedule", [
    ("jacobi", "aggr", "drain-master"),   # seat + manager handoff
    ("is", "aggr", "drain-mid"),          # lock-token custody
    ("jacobi", "base", "join-early"),     # lazy catch-up re-entry
    ("shallow", "merge", "drain-mid"),    # merge-level sync traffic
])
def test_membership_change_is_bit_identical(app, opt, schedule):
    case = elastic.run_case(app, opt, schedule)
    assert case.ok, case.as_dict()
    assert case.identical
    assert case.realized                # the event actually fired
    assert case.violations == []        # inspector reconciles exactly
    assert case.findings == []          # sanitizer stays clean
    if schedule.startswith("drain"):
        assert case.handoff_messages > 0
        assert case.handoff_bytes > 0


@pytest.mark.smoke
def test_false_positive_suspicion_is_survived():
    """A silence between the suspicion and eviction thresholds: the
    detector wrongly suspects a live node, re-admits it on the next
    beat, and the answer is still bit-identical."""
    case = elastic.run_case("jacobi", "aggr", "suspect-then-recover")
    assert case.ok, case.as_dict()
    assert "suspected" in case.observed
    assert "admitted" in case.observed
    assert "evicted" not in case.observed
    assert case.suspicions >= 1 and case.admissions >= 1
    assert case.detect_us > 0           # detection latency was measured


def test_eviction_is_survived_too():
    """A long silence crosses the eviction threshold: the node is
    declared evicted, keeps computing, and is re-admitted when its
    NIC returns — results still bit-identical."""
    case = elastic.run_case("jacobi", "aggr", "evict-at-barrier")
    assert case.ok, case.as_dict()
    assert {"suspected", "evicted", "admitted"} <= case.observed
    assert case.evictions >= 1


def test_schedule_mining_produces_all_families():
    from repro.harness.spec import RunSpec, run
    base = run(RunSpec(app="jacobi", mode="dsm", dataset="tiny",
                       nprocs=4, opt="aggr", page_size=1024),
               telemetry=True)
    names = [s.name for s in elastic.mine_schedules(base, 4)]
    assert names == list(elastic.SCHEDULES)
    hb = elastic.mine_schedules(base, 4)[0].plan.heartbeat
    assert hb.suspect_after_us < hb.evict_after_us


def test_sweep_reduced_matrix():
    cases = elastic.sweep(apps=["jacobi"], opts=["aggr"],
                          schedules=["drain-mid", "join-early"],
                          inspect=False)
    assert len(cases) == 2
    assert all(c.identical for c in cases), \
        [c.as_dict() for c in cases]


def test_render_reports_failures():
    case = elastic.ElasticCase(app="x", opt="base",
                               schedule="drain-mid", identical=False)
    text = elastic.render_elastic([case])
    assert "DIVERGED" in text and "ELASTIC FAIL" in text
    good = elastic.ElasticCase(app="x", opt="base", schedule="ok",
                               identical=True, realized=True)
    assert "ELASTIC OK" in elastic.render_elastic([good])


@pytest.mark.smoke
def test_elastic_cli_end_to_end(capsys, tmp_path):
    from repro.__main__ import main
    json_path = tmp_path / "elastic.json"
    rc = main(["elastic", "--apps", "jacobi", "--opts", "aggr",
               "--schedules", "drain-master", "--json",
               str(json_path)])
    assert rc == 0
    out = capsys.readouterr().out
    assert "ELASTIC OK" in out
    data = json.loads(json_path.read_text())
    assert data["schema"].startswith("repro-elastic/")
    assert data["cases"] and all(c["ok"] for c in data["cases"])
    assert data["cases"][0]["realized"]
    assert data["cases"][0]["handoff_messages"] > 0


def test_elastic_cli_with_declarative_plan(capsys, tmp_path):
    plan_path = tmp_path / "plan.json"
    plan_path.write_text(json.dumps({"membership": {
        "drains": [{"pid": 1, "t": 4000.0, "away_us": 2500.0}]}}))
    from repro.__main__ import main
    rc = main(["elastic", "--apps", "jacobi", "--opts", "aggr",
               "--plan", str(plan_path)])
    assert rc == 0
    out = capsys.readouterr().out
    assert "ELASTIC OK" in out and "plan" in out
